package ofconn

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/faults"
	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/switchsim"
)

// startFaultySwitch serves sw through the injector and returns its address.
func startFaultySwitch(t *testing.T, sw *switchsim.Switch, inj *faults.Injector) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go ServeWith(ln, sw, ServeOptions{Faults: inj})
	return ln.Addr().String()
}

func testAdd(id uint32) *openflow.FlowMod {
	return &openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Match:    flowtable.ExactProbeMatch(id),
		Priority: 10,
		Actions:  flowtable.Output(1),
	}
}

func TestTimeoutWhenServerDropsReplies(t *testing.T) {
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	inj := faults.NewInjector(faults.Config{Seed: 1, Drop: 1.0})
	addr := startFaultySwitch(t, sw, inj)
	c, err := DialOptions(addr, ControllerOptions{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.FlowMod(testAdd(1))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout when every reply is dropped", err)
	}
	var to interface{ Timeout() bool }
	if !errors.As(err, &to) || !to.Timeout() {
		t.Fatal("ErrTimeout must carry the Timeout marker")
	}
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatal("ErrTimeout must be transient so the probe engine retries it")
	}
}

func TestServerInjectedOverflowSurfacesTableFull(t *testing.T) {
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	inj := faults.NewInjector(faults.Config{Seed: 2, Overflow: 1.0})
	addr := startFaultySwitch(t, sw, inj)
	c, err := DialOptions(addr, ControllerOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.FlowMod(testAdd(1))
	if !errors.Is(err, switchsim.ErrTableFull) {
		t.Fatalf("got %v, want an injected all-tables-full error", err)
	}
	if tcam, _, software := sw.RuleCount(); tcam+software != 0 {
		t.Fatalf("switch applied the rejected flow-mod (%d rules resident)", tcam+software)
	}
}

func TestServerInjectedResetClearsSwitch(t *testing.T) {
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	addr := startFaultySwitch(t, sw, faults.NewInjector(faults.Config{Seed: 3, Reset: 1.0}))
	c, err := DialOptions(addr, ControllerOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The reset fires on the inbound flow-mod; the op still gets a reply.
	_ = c.FlowMod(testAdd(1))
	if got := sw.Stats().Resets; got == 0 {
		t.Fatal("server-side reset fault never reset the switch")
	}
}

// TestProbeAllAggregatesAllFailures is the fleet regression: when two
// members both fail, both failures must appear in the joined error instead
// of one being silently discarded.
func TestProbeAllAggregatesAllFailures(t *testing.T) {
	f := NewFleet()
	defer f.Close()
	// Two switches whose servers time out every request, plus one healthy
	// member to prove partial success still probes.
	for _, name := range []string{"dead-a", "dead-b"} {
		sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
		inj := faults.NewInjector(faults.Config{Seed: 4, Drop: 1.0})
		addr := startFaultySwitch(t, sw, inj)
		c, err := DialOptions(addr, ControllerOptions{Timeout: 50 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		f.mu.Lock()
		f.members[name] = c
		f.mu.Unlock()
	}
	healthy := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	if err := f.Connect("alive", startSwitch(t, healthy)); err != nil {
		t.Fatal(err)
	}

	db := pattern.NewDB()
	err := f.ProbeAll(db, infer.CostOptions{Samples: 2})
	if err == nil {
		t.Fatal("ProbeAll succeeded with two dead members")
	}
	for _, name := range []string{"dead-a", "dead-b"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("joined error is missing member %s: %v", name, err)
		}
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("joined error lost the timeout cause: %v", err)
	}
	if _, ok := db.Score("alive"); !ok {
		t.Error("healthy member was not probed despite others failing")
	}
}
