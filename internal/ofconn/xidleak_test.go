package ofconn

import (
	"errors"
	"net"
	"sync"
	"testing"

	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/switchsim"
)

// failingWriteConn wraps a live connection and starts failing writes after
// `allow` more succeed, while reads keep working — so the controller's read
// loop stays healthy and any pending-map cleanup observed is the work of
// the send error paths, not of connection teardown.
type failingWriteConn struct {
	net.Conn
	mu    sync.Mutex
	armed bool
	allow int
}

func (f *failingWriteConn) arm(allow int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = true
	f.allow = allow
}

func (f *failingWriteConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	fail := f.armed && f.allow <= 0
	if f.armed && f.allow > 0 {
		f.allow--
	}
	f.mu.Unlock()
	if fail {
		return 0, errors.New("injected write failure")
	}
	return f.Conn.Write(p)
}

func (c *Controller) pendingLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

func dialFlaky(t *testing.T) (*Controller, *failingWriteConn) {
	t.Helper()
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := &failingWriteConn{Conn: raw}
	c, err := NewController(fc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, fc
}

func probeAdd(id uint32) *openflow.FlowMod {
	return &openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Match:    flowtable.ExactProbeMatch(id),
		Priority: 10,
		Actions:  flowtable.Output(1),
	}
}

// TestFlowModSendFailureReleasesXIDs pins the regression: a failed send must
// unregister both the flow-mod and barrier XIDs, on every error path. A
// leaked entry would sit in pending forever and misroute a late reply that
// reuses the XID.
func TestFlowModSendFailureReleasesXIDs(t *testing.T) {
	c, fc := dialFlaky(t)

	// Fail the flow-mod write itself.
	fc.arm(0)
	if err := c.FlowMod(probeAdd(1)); err == nil {
		t.Fatal("FlowMod with failing send: want error")
	}
	if n := c.pendingLen(); n != 0 {
		t.Fatalf("flow-mod send failure leaked %d pending XIDs", n)
	}

	// Let the flow-mod through and fail the barrier write.
	fc.arm(1)
	if err := c.FlowMod(probeAdd(2)); err == nil {
		t.Fatal("FlowMod with failing barrier send: want error")
	}
	if n := c.pendingLen(); n != 0 {
		t.Fatalf("barrier send failure leaked %d pending XIDs", n)
	}
}

// TestFlowModsSendFailureReleasesXIDs covers the batch path: a write failing
// mid-batch (or at the barrier) must unwind every XID registered so far.
func TestFlowModsSendFailureReleasesXIDs(t *testing.T) {
	c, fc := dialFlaky(t)
	batch := []*openflow.FlowMod{probeAdd(1), probeAdd(2), probeAdd(3)}

	// Fail on the third flow-mod write: two XIDs already registered.
	fc.arm(2)
	if err := c.FlowMods(batch); err == nil {
		t.Fatal("FlowMods with failing send: want error")
	}
	if n := c.pendingLen(); n != 0 {
		t.Fatalf("mid-batch send failure leaked %d pending XIDs", n)
	}

	// Let all flow-mods through and fail the barrier write.
	fc.arm(3)
	if err := c.FlowMods(batch); err == nil {
		t.Fatal("FlowMods with failing barrier send: want error")
	}
	if n := c.pendingLen(); n != 0 {
		t.Fatalf("batch barrier send failure leaked %d pending XIDs", n)
	}
}
