package ofconn

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/core/sched"
	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/packet"
	"tango/internal/simclock"
	"tango/internal/switchsim"
)

// startSwitch serves sw on a loopback listener and returns its address.
func startSwitch(t *testing.T, sw *switchsim.Switch) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(ln, sw)
	return ln.Addr().String()
}

// fastClock makes simulated latencies nearly instant so TCP tests stay fast.
func fastClock() simclock.Clock { return &simclock.Real{Scale: 1e-6} }

func TestHandshake(t *testing.T) {
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Features() == nil || c.Features().DatapathID != switchsim.Switch2().DatapathID {
		t.Fatalf("features: %+v", c.Features())
	}
}

func TestFlowModAndProbeOverTCP(t *testing.T) {
	sw := switchsim.New(switchsim.Switch2().WithTCAMCapacity(4), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for id := uint32(0); id < 4; id++ {
		err := c.FlowMod(&openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    flowtable.ExactProbeMatch(id),
			Priority: 10,
			Actions:  flowtable.Output(1),
		})
		if err != nil {
			t.Fatalf("flow %d: %v", id, err)
		}
	}
	// Overflow must surface as a table-full error.
	err = c.FlowMod(&openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Match:    flowtable.ExactProbeMatch(9),
		Priority: 10,
		Actions:  flowtable.Output(1),
	})
	if !errors.Is(err, switchsim.ErrTableFull) {
		t.Fatalf("overflow err = %v, want ErrTableFull", err)
	}

	// Installed flows are forwarded (not punted); unknown flows punt.
	raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 2})
	rtt, punted, err := c.SendProbe(raw, 1)
	if err != nil || punted {
		t.Fatalf("probe: rtt=%v punted=%v err=%v", rtt, punted, err)
	}
	if rtt <= 0 {
		t.Fatal("non-positive RTT")
	}
	raw, _ = packet.BuildProbe(packet.ProbeSpec{FlowID: 99})
	_, punted, err = c.SendProbe(raw, 1)
	if err != nil || !punted {
		t.Fatalf("miss probe: punted=%v err=%v", punted, err)
	}
}

func TestEchoAndStatsOverTCP(t *testing.T) {
	sw := switchsim.New(switchsim.Switch1(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Echo(); err != nil {
		t.Fatal(err)
	}
	if err := c.FlowMod(&openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Match:    flowtable.ExactProbeMatch(0),
		Priority: 5,
		Actions:  flowtable.Output(2),
	}); err != nil {
		t.Fatal(err)
	}
	tables, err := c.TableStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 { // tcam + software
		t.Fatalf("tables = %+v", tables)
	}
	flows, err := c.FlowStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 || flows[0].Priority != 5 {
		t.Fatalf("flows = %+v", flows)
	}
}

func TestConcurrentClients(t *testing.T) {
	sw := switchsim.New(switchsim.OVS(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				id := uint32(w*1000 + i)
				if err := c.FlowMod(&openflow.FlowMod{
					Command:  openflow.FlowAdd,
					Match:    flowtable.ExactProbeMatch(id),
					Priority: 10,
					Actions:  flowtable.Output(1),
				}); err != nil {
					t.Errorf("worker %d flow %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	_, _, sv := sw.RuleCount()
	if sv != 80 {
		t.Fatalf("installed rules = %d, want 80", sv)
	}
}

func TestClosedConnectionErrors(t *testing.T) {
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	err = c.FlowMod(&openflow.FlowMod{Command: openflow.FlowAdd, Match: flowtable.ExactProbeMatch(1), Priority: 1})
	if err == nil {
		t.Fatal("flow-mod on closed connection succeeded")
	}
}

func TestNotificationsOverTCP(t *testing.T) {
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Taking a port down queues a PORT_STATUS, flushed ahead of the next
	// reply and delivered on the notifications channel.
	sw.SetPortDown(7, true)
	if _, err := c.Echo(); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-c.Notifications():
		ps, ok := msg.(*openflow.PortStatus)
		if !ok || ps.Desc.PortNo != 7 {
			t.Fatalf("notification = %+v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no PORT_STATUS notification")
	}
}

func TestFlowRemovedOverTCP(t *testing.T) {
	clk := simclock.NewVirtual()
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(clk))
	addr := startSwitch(t, sw)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.FlowMod(&openflow.FlowMod{
		Command:     openflow.FlowAdd,
		Match:       flowtable.ExactProbeMatch(1),
		Priority:    9,
		HardTimeout: 5,
		Flags:       openflow.FlagSendFlowRem,
		Actions:     flowtable.Output(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(6 * time.Second)
	if _, err := c.Echo(); err != nil { // triggers the expiry sweep
		t.Fatal(err)
	}
	select {
	case msg := <-c.Notifications():
		fr, ok := msg.(*openflow.FlowRemoved)
		if !ok || fr.Reason != openflow.RemovedHardTimeout || fr.Priority != 9 {
			t.Fatalf("notification = %+v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no FLOW_REMOVED notification")
	}
}

func TestFlowModsBatch(t *testing.T) {
	sw := switchsim.New(switchsim.Switch2().WithTCAMCapacity(5), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mk := func(lo, n int) []*openflow.FlowMod {
		out := make([]*openflow.FlowMod, n)
		for i := range out {
			out[i] = &openflow.FlowMod{
				Command:  openflow.FlowAdd,
				Match:    flowtable.ExactProbeMatch(uint32(lo + i)),
				Priority: 10,
				Actions:  flowtable.Output(1),
			}
		}
		return out
	}
	if err := c.FlowMods(mk(0, 5)); err != nil {
		t.Fatal(err)
	}
	tcam, _, _ := sw.RuleCount()
	if tcam != 5 {
		t.Fatalf("installed = %d, want 5", tcam)
	}
	// Overflowing batch reports the table-full error.
	if err := c.FlowMods(mk(100, 2)); !errors.Is(err, switchsim.ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
}

func TestFleetProbeAndSchedule(t *testing.T) {
	fleet := NewFleet()
	defer fleet.Close()
	for _, name := range []string{"a", "b"} {
		sw := switchsim.New(switchsim.Switch1(), switchsim.WithClock(fastClock()))
		addr := startSwitch(t, sw)
		if err := fleet.Connect(name, addr); err != nil {
			t.Fatal(err)
		}
	}
	if got := fleet.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("names = %v", got)
	}
	if _, ok := fleet.Controller("a"); !ok {
		t.Fatal("member a missing")
	}

	db := pattern.NewDB()
	if err := fleet.ProbeAll(db, infer.CostOptions{Samples: 16}); err != nil {
		t.Fatal(err)
	}
	for _, name := range fleet.Names() {
		card, ok := db.Score(name)
		if !ok || card.Mod <= 0 {
			t.Fatalf("no usable card for %s: %+v", name, card)
		}
	}

	// The engines drive the scheduler end to end over TCP.
	g := sched.NewGraph()
	for i := 0; i < 5; i++ {
		g.AddNode(&sched.Request{Switch: "a", Op: pattern.OpAdd,
			FlowID: uint32(900 + i), Priority: uint16(100 + i), HasPriority: true})
		g.AddNode(&sched.Request{Switch: "b", Op: pattern.OpAdd,
			FlowID: uint32(900 + i), Priority: uint16(100 + i), HasPriority: true})
	}
	ex := sched.EngineExecutor{}
	for n, e := range fleet.Engines() {
		ex[n] = e
	}
	res, err := sched.Run(g, &sched.Tango{DB: db, SortPriorities: true}, ex, sched.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
}
