// Package ofconn carries the OpenFlow protocol over TCP: a server loop that
// exposes an emulated switch on a listening socket, and a controller client
// that performs the handshake and offers the synchronous operations Tango's
// probing engine needs (flow-mod with barrier confirmation, probe packets
// with RTT measurement, echo, statistics).
//
// The in-process probing path uses virtual time and is what experiments and
// benchmarks run on; this package exists so the same inference code can be
// pointed at a real socket (cmd/switchd + examples/inference), proving the
// protocol implementation end to end.
package ofconn

import (
	"errors"
	"io"
	"log"
	"net"

	"tango/internal/openflow"
	"tango/internal/switchsim"
)

// Serve accepts controller connections on ln and services each with sw.
// It returns when the listener fails (e.g. is closed). Each connection is
// handled on its own goroutine; the switch itself serialises operations.
func Serve(ln net.Listener, sw *switchsim.Switch) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := handleConn(conn, sw); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				log.Printf("ofconn: connection from %v ended: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// handleConn runs the per-connection agent loop: an initial HELLO, then a
// strict request→replies cycle driven by the switch's Handle method.
func handleConn(conn net.Conn, sw *switchsim.Switch) error {
	if err := openflow.WriteMessage(conn, &openflow.Hello{}); err != nil {
		return err
	}
	for {
		msg, err := openflow.ReadMessage(conn)
		if err != nil {
			return err
		}
		for _, reply := range sw.Handle(msg) {
			if err := openflow.WriteMessage(conn, reply); err != nil {
				return err
			}
		}
	}
}
