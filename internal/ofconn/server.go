// Package ofconn carries the OpenFlow protocol over TCP: a server loop that
// exposes an emulated switch on a listening socket, and a controller client
// that performs the handshake and offers the synchronous operations Tango's
// probing engine needs (flow-mod with barrier confirmation, probe packets
// with RTT measurement, echo, statistics).
//
// The in-process probing path uses virtual time and is what experiments and
// benchmarks run on; this package exists so the same inference code can be
// pointed at a real socket (cmd/switchd + examples/inference), proving the
// protocol implementation end to end.
package ofconn

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"tango/internal/faults"
	"tango/internal/openflow"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

// ServeOptions configures ServeWith.
type ServeOptions struct {
	// Logger receives connection-lifecycle messages (errors ending a
	// connection). Nil means log.Default(); tests inject a silenced or
	// capturing logger.
	Logger *log.Logger
	// Metrics receives the server counters (ofconn.accepted, active_conns,
	// msgs_in/out, conn_errors). Nil falls back to the process default.
	Metrics *telemetry.Registry
	// Tracer receives ofconn.accept / ofconn.close lifecycle events. Nil
	// falls back to the process default.
	Tracer *telemetry.Tracer
	// Faults, when non-nil, perturbs the agent loop: requests and replies
	// are dropped, delayed, duplicated, or reordered, flow-mods rejected
	// with spurious table-full errors, and the switch reset mid-stream —
	// one seeded decision per inbound message. Controllers talking to a
	// faulty server should set ControllerOptions.Timeout, or dropped
	// replies hang the awaiting call forever.
	Faults *faults.Injector
}

// serverTelemetry bundles the per-listener handles resolved once in
// ServeWith.
type serverTelemetry struct {
	tracer   *telemetry.Tracer
	accepted *telemetry.Counter
	active   *telemetry.Gauge
	msgsIn   *telemetry.Counter
	msgsOut  *telemetry.Counter
	connErrs *telemetry.Counter
}

// Serve accepts controller connections on ln and services each with sw,
// with default options. It returns when the listener fails (e.g. is
// closed). Each connection is handled on its own goroutine; the switch
// itself serialises operations.
func Serve(ln net.Listener, sw *switchsim.Switch) error {
	return ServeWith(ln, sw, ServeOptions{})
}

// ServeWith is Serve with an injectable logger and telemetry.
func ServeWith(ln net.Listener, sw *switchsim.Switch, opts ServeOptions) error {
	return NewServer(ln, sw, opts).Serve()
}

// Server is a stoppable switch-side listener: the same accept/agent loop
// ServeWith runs, plus connection tracking so Shutdown can drain in-flight
// operations and release every goroutine — the lifecycle cmd/switchd and
// the fleet service's in-process TCP members need. Construct with
// NewServer, run Serve on its own goroutine, stop with Shutdown.
type Server struct {
	ln   net.Listener
	sw   *switchsim.Switch
	lg   *log.Logger
	tel  serverTelemetry
	inj  *faults.Injector
	wg   sync.WaitGroup
	mu   sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool
}

// NewServer wraps an established listener; options resolve exactly as in
// ServeWith.
func NewServer(ln net.Listener, sw *switchsim.Switch, opts ServeOptions) *Server {
	lg := opts.Logger
	if lg == nil {
		lg = log.Default()
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.Default()
	}
	tr := opts.Tracer
	if tr == nil {
		tr = telemetry.DefaultTracer()
	}
	return &Server{
		ln: ln, sw: sw, lg: lg, inj: opts.Faults,
		conns: make(map[net.Conn]struct{}),
		tel: serverTelemetry{
			tracer:   tr,
			accepted: reg.Counter("ofconn.accepted"),
			active:   reg.Gauge("ofconn.active_conns"),
			msgsIn:   reg.Counter("ofconn.msgs_in"),
			msgsOut:  reg.Counter("ofconn.msgs_out"),
			connErrs: reg.Counter("ofconn.conn_errors"),
		},
	}
}

// Addr returns the listener's address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve runs the accept loop until the listener fails or Shutdown is
// called; a Shutdown-initiated stop returns nil, an external listener
// failure returns its error — so ServeWith keeps its historical contract.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.tel.accepted.Add(1)
		s.tel.active.Add(1)
		s.tel.tracer.Instant("ofconn.accept", "", map[string]any{"remote": conn.RemoteAddr().String()})
		go func() {
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.tel.active.Add(-1)
				s.tel.tracer.Instant("ofconn.close", "", map[string]any{"remote": conn.RemoteAddr().String()})
				s.wg.Done()
			}()
			if err := handleConn(conn, s.sw, s.tel, s.inj); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.tel.connErrs.Add(1)
				s.lg.Printf("ofconn: connection from %v ended: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// readCloser is the half-close capability Shutdown prefers: stopping the
// request stream while leaving the write side open lets the agent loop
// finish writing the in-flight operation's replies. *net.TCPConn has it.
type readCloser interface{ CloseRead() error }

// Shutdown stops the server gracefully: the listener closes (no new
// connections), every open connection's read side is shut so its agent
// loop drains the operation it is processing — replies still go out — and
// the handler goroutines are awaited. Connections that have not drained
// when grace elapses (or that cannot half-close) are force-closed, so
// Shutdown always returns with every server goroutine released. It is
// idempotent; grace <= 0 force-closes immediately.
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closing = true
	open := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	forced := false
	if grace > 0 {
		for _, c := range open {
			if rc, ok := c.(readCloser); ok {
				_ = rc.CloseRead()
			} else {
				// No half-close (e.g. net.Pipe): the handler only unblocks
				// on a full close; the current op's replies may be cut.
				c.Close()
			}
		}
		done := make(chan struct{})
		go func() { s.wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(grace):
			forced = true
		}
	}
	// Force-close stragglers (and the grace<=0 path); handlers see
	// net.ErrClosed and exit without logging noise.
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if forced && err == nil {
		err = fmt.Errorf("ofconn: shutdown forced after %v grace", grace)
	}
	return err
}

// handshakeMsg reports whether msg belongs to the connection handshake.
func handshakeMsg(msg openflow.Message) bool {
	switch msg.(type) {
	case *openflow.Hello, *openflow.FeaturesRequest:
		return true
	}
	return false
}

// handleConn runs the per-connection agent loop: an initial HELLO, then a
// strict request→replies cycle driven by the switch's Handle method. A
// non-nil injector draws one fault decision per inbound message and
// perturbs the cycle accordingly.
func handleConn(conn net.Conn, sw *switchsim.Switch, tel serverTelemetry, inj *faults.Injector) error {
	if err := openflow.WriteMessage(conn, &openflow.Hello{}); err != nil {
		return err
	}
	tel.msgsOut.Add(1)
	// held carries replies deferred by a reorder fault; they go out after
	// the next message's replies, swapping the two on the wire.
	var held []openflow.Message
	for {
		msg, err := openflow.ReadMessage(conn)
		if err != nil {
			return err
		}
		tel.msgsIn.Add(1)
		var replies []openflow.Message
		var dec faults.Decision
		// The handshake is exempt: a connection that cannot complete
		// HELLO/FEATURES is indistinguishable from a dead listener, which is
		// outside the fault model (we perturb channels, not kill them).
		if !handshakeMsg(msg) {
			dec = inj.Decide() // nil injector never fires
		}
		apply := true
		if dec.Fire {
			switch dec.Kind {
			case faults.KindDrop:
				if dec.AckLoss {
					// Applied by the switch; the replies vanish in transit.
					sw.Handle(msg)
				}
				apply = false
			case faults.KindDelay:
				time.Sleep(dec.Delay)
			case faults.KindReset:
				sw.Reset()
			case faults.KindOverflow:
				if fm, ok := msg.(*openflow.FlowMod); ok {
					// Spurious agent-side rejection: the op is not applied.
					replies = []openflow.Message{&openflow.Error{
						Header:  openflow.Header{Xid: fm.XID()},
						ErrType: openflow.ErrTypeFlowModFailed,
						Code:    openflow.ErrCodeAllTablesFull,
					}}
					apply = false
				}
			}
		}
		if apply {
			replies = append(replies, sw.Handle(msg)...)
		}
		if dec.Fire && dec.Kind == faults.KindDuplicate {
			replies = append(replies, replies...)
		}
		if dec.Fire && dec.Kind == faults.KindReorder && held == nil {
			held = replies
			continue
		}
		replies = append(replies, held...)
		held = nil
		for _, reply := range replies {
			if err := openflow.WriteMessage(conn, reply); err != nil {
				return err
			}
			tel.msgsOut.Add(1)
		}
	}
}
