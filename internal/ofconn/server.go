// Package ofconn carries the OpenFlow protocol over TCP: a server loop that
// exposes an emulated switch on a listening socket, and a controller client
// that performs the handshake and offers the synchronous operations Tango's
// probing engine needs (flow-mod with barrier confirmation, probe packets
// with RTT measurement, echo, statistics).
//
// The in-process probing path uses virtual time and is what experiments and
// benchmarks run on; this package exists so the same inference code can be
// pointed at a real socket (cmd/switchd + examples/inference), proving the
// protocol implementation end to end.
package ofconn

import (
	"errors"
	"io"
	"log"
	"net"
	"time"

	"tango/internal/faults"
	"tango/internal/openflow"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

// ServeOptions configures ServeWith.
type ServeOptions struct {
	// Logger receives connection-lifecycle messages (errors ending a
	// connection). Nil means log.Default(); tests inject a silenced or
	// capturing logger.
	Logger *log.Logger
	// Metrics receives the server counters (ofconn.accepted, active_conns,
	// msgs_in/out, conn_errors). Nil falls back to the process default.
	Metrics *telemetry.Registry
	// Tracer receives ofconn.accept / ofconn.close lifecycle events. Nil
	// falls back to the process default.
	Tracer *telemetry.Tracer
	// Faults, when non-nil, perturbs the agent loop: requests and replies
	// are dropped, delayed, duplicated, or reordered, flow-mods rejected
	// with spurious table-full errors, and the switch reset mid-stream —
	// one seeded decision per inbound message. Controllers talking to a
	// faulty server should set ControllerOptions.Timeout, or dropped
	// replies hang the awaiting call forever.
	Faults *faults.Injector
}

// serverTelemetry bundles the per-listener handles resolved once in
// ServeWith.
type serverTelemetry struct {
	tracer   *telemetry.Tracer
	accepted *telemetry.Counter
	active   *telemetry.Gauge
	msgsIn   *telemetry.Counter
	msgsOut  *telemetry.Counter
	connErrs *telemetry.Counter
}

// Serve accepts controller connections on ln and services each with sw,
// with default options. It returns when the listener fails (e.g. is
// closed). Each connection is handled on its own goroutine; the switch
// itself serialises operations.
func Serve(ln net.Listener, sw *switchsim.Switch) error {
	return ServeWith(ln, sw, ServeOptions{})
}

// ServeWith is Serve with an injectable logger and telemetry.
func ServeWith(ln net.Listener, sw *switchsim.Switch, opts ServeOptions) error {
	lg := opts.Logger
	if lg == nil {
		lg = log.Default()
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.Default()
	}
	tr := opts.Tracer
	if tr == nil {
		tr = telemetry.DefaultTracer()
	}
	tel := serverTelemetry{
		tracer:   tr,
		accepted: reg.Counter("ofconn.accepted"),
		active:   reg.Gauge("ofconn.active_conns"),
		msgsIn:   reg.Counter("ofconn.msgs_in"),
		msgsOut:  reg.Counter("ofconn.msgs_out"),
		connErrs: reg.Counter("ofconn.conn_errors"),
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		tel.accepted.Add(1)
		tel.active.Add(1)
		tel.tracer.Instant("ofconn.accept", "", map[string]any{"remote": conn.RemoteAddr().String()})
		go func() {
			defer func() {
				conn.Close()
				tel.active.Add(-1)
				tel.tracer.Instant("ofconn.close", "", map[string]any{"remote": conn.RemoteAddr().String()})
			}()
			if err := handleConn(conn, sw, tel, opts.Faults); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				tel.connErrs.Add(1)
				lg.Printf("ofconn: connection from %v ended: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// handshakeMsg reports whether msg belongs to the connection handshake.
func handshakeMsg(msg openflow.Message) bool {
	switch msg.(type) {
	case *openflow.Hello, *openflow.FeaturesRequest:
		return true
	}
	return false
}

// handleConn runs the per-connection agent loop: an initial HELLO, then a
// strict request→replies cycle driven by the switch's Handle method. A
// non-nil injector draws one fault decision per inbound message and
// perturbs the cycle accordingly.
func handleConn(conn net.Conn, sw *switchsim.Switch, tel serverTelemetry, inj *faults.Injector) error {
	if err := openflow.WriteMessage(conn, &openflow.Hello{}); err != nil {
		return err
	}
	tel.msgsOut.Add(1)
	// held carries replies deferred by a reorder fault; they go out after
	// the next message's replies, swapping the two on the wire.
	var held []openflow.Message
	for {
		msg, err := openflow.ReadMessage(conn)
		if err != nil {
			return err
		}
		tel.msgsIn.Add(1)
		var replies []openflow.Message
		var dec faults.Decision
		// The handshake is exempt: a connection that cannot complete
		// HELLO/FEATURES is indistinguishable from a dead listener, which is
		// outside the fault model (we perturb channels, not kill them).
		if !handshakeMsg(msg) {
			dec = inj.Decide() // nil injector never fires
		}
		apply := true
		if dec.Fire {
			switch dec.Kind {
			case faults.KindDrop:
				if dec.AckLoss {
					// Applied by the switch; the replies vanish in transit.
					sw.Handle(msg)
				}
				apply = false
			case faults.KindDelay:
				time.Sleep(dec.Delay)
			case faults.KindReset:
				sw.Reset()
			case faults.KindOverflow:
				if fm, ok := msg.(*openflow.FlowMod); ok {
					// Spurious agent-side rejection: the op is not applied.
					replies = []openflow.Message{&openflow.Error{
						Header:  openflow.Header{Xid: fm.XID()},
						ErrType: openflow.ErrTypeFlowModFailed,
						Code:    openflow.ErrCodeAllTablesFull,
					}}
					apply = false
				}
			}
		}
		if apply {
			replies = append(replies, sw.Handle(msg)...)
		}
		if dec.Fire && dec.Kind == faults.KindDuplicate {
			replies = append(replies, replies...)
		}
		if dec.Fire && dec.Kind == faults.KindReorder && held == nil {
			held = replies
			continue
		}
		replies = append(replies, held...)
		held = nil
		for _, reply := range replies {
			if err := openflow.WriteMessage(conn, reply); err != nil {
				return err
			}
			tel.msgsOut.Add(1)
		}
	}
}
