package ofconn

import (
	"bytes"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

// TestDialClosedListener covers the controller-side connect error path: the
// listener is gone before the dial.
func TestDialClosedListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatal("Dial to closed listener succeeded")
	}
}

// TestHandshakeServerClosesImmediately covers the handshake error path: the
// server accepts and slams the connection shut before sending anything.
func TestHandshakeServerClosesImmediately(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Close()
	}()
	c, err := Dial(ln.Addr().String())
	if err == nil {
		c.Close()
		t.Fatal("handshake against immediately-closed server succeeded")
	}
}

// TestHandshakeServerClosesMidHello covers a torn handshake: the server
// writes a partial OpenFlow header and then closes.
func TestHandshakeServerClosesMidHello(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte{0x01, 0x00, 0x00}) // half an OpenFlow header
		conn.Close()
	}()
	c, err := Dial(ln.Addr().String())
	if err == nil {
		c.Close()
		t.Fatal("handshake against mid-hello close succeeded")
	}
}

// TestServeReturnsOnListenerClose proves Serve's exit path: closing the
// listener makes Serve return its accept error instead of hanging.
func TestServeReturnsOnListenerClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	done := make(chan error, 1)
	go func() { done <- Serve(ln, sw) }()
	time.Sleep(10 * time.Millisecond) // let Serve reach Accept
	ln.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Serve returned nil after listener close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}
}

// syncWriter serialises writes from the server's connection goroutines so
// the test can read the buffer race-free.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeWithInjectedLogger proves connection errors go through the
// injected logger, and that the server telemetry counters move.
func TestServeWithInjectedLogger(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var out syncWriter
	lg := log.New(&out, "", 0)
	reg := telemetry.NewRegistry()
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	go ServeWith(ln, sw, ServeOptions{Logger: lg, Metrics: reg})

	// A client that writes garbage mid-stream forces a read error on the
	// server side (not EOF), which must be logged via the injected logger.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	io.ReadFull(conn, make([]byte, 8)) // consume the server HELLO
	conn.Write([]byte{0x01, 0x00, 0x00})
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(out.String(), "ofconn:") {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := out.String(); !strings.Contains(got, "ofconn:") {
		t.Fatalf("injected logger captured nothing; log = %q", got)
	}

	snap := reg.Snapshot()
	if snap.Counters["ofconn.accepted"] < 1 {
		t.Fatalf("ofconn.accepted = %d, want >= 1", snap.Counters["ofconn.accepted"])
	}
	if snap.Counters["ofconn.conn_errors"] < 1 {
		t.Fatalf("ofconn.conn_errors = %d, want >= 1", snap.Counters["ofconn.conn_errors"])
	}
	if snap.Counters["ofconn.msgs_out"] < 1 {
		t.Fatalf("ofconn.msgs_out = %d, want >= 1 (HELLO)", snap.Counters["ofconn.msgs_out"])
	}
}

// TestControllerTelemetry checks the controller-side counters and the
// handshake histogram over a live loopback connection.
func TestControllerTelemetry(t *testing.T) {
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	reg := telemetry.NewRegistry()
	c, err := DialOptions(addr, ControllerOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Echo(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	// Handshake = HELLO + FEATURES_REQUEST, echo = one more message out.
	if snap.Counters["ofconn.controller.msgs_out"] < 3 {
		t.Fatalf("msgs_out = %d, want >= 3", snap.Counters["ofconn.controller.msgs_out"])
	}
	if snap.Counters["ofconn.controller.msgs_in"] < 2 {
		t.Fatalf("msgs_in = %d, want >= 2", snap.Counters["ofconn.controller.msgs_in"])
	}
	h, ok := snap.Histograms["ofconn.controller.handshake_ns"]
	if !ok || h.Count != 1 || h.Sum <= 0 {
		t.Fatalf("handshake histogram = %+v", h)
	}
}
