package ofconn

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tango/internal/openflow"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

// Controller is one controller-side OpenFlow connection to a switch. Its
// method set satisfies the probing engine's Device interface, so the same
// inference code runs against an in-process emulated switch or a live TCP
// endpoint.
type Controller struct {
	conn net.Conn

	mu      sync.Mutex
	nextXID uint32
	pending map[uint32]chan openflow.Message
	readErr error
	closed  chan struct{}

	// notify buffers unsolicited switch messages (FLOW_REMOVED,
	// PORT_STATUS, async PACKET_IN). When full, the oldest notification is
	// dropped — the controller favours liveness over completeness, like
	// every production controller's event queue.
	notify chan openflow.Message

	features *openflow.FeaturesReply
	timeout  time.Duration
	// window is the resolved async in-flight bound (ControllerOptions.
	// AsyncWindow, defaulted); immutable after construction.
	window int

	// async is the pipelined send path (FlowModAsync / Flush); see async.go.
	async asyncState

	tel ctrlTelemetry
}

// ControllerOptions configures DialOptions / NewControllerOptions.
type ControllerOptions struct {
	// Metrics receives the controller counters (ofconn.controller.msgs_in,
	// msgs_out, notify_dropped) and the handshake-latency histogram. Nil
	// falls back to the process default.
	Metrics *telemetry.Registry
	// Tracer receives controller lifecycle instants (ofconn.dial,
	// ofconn.controller.close). Nil falls back to the process default.
	Tracer *telemetry.Tracer
	// Timeout bounds every await for a switch reply (barrier, probe,
	// echo, stats, handshake). Zero keeps the historical block-forever
	// behaviour; set it whenever the peer may lose messages (fault
	// injection, flaky networks) so drops surface as ErrTimeout instead
	// of hangs.
	Timeout time.Duration
	// AsyncWindow bounds how many pipelined flow-mods may be in flight
	// before FlowModAsync forces a flush (see async.go). Zero selects the
	// default (64); 1 degenerates to fully serial behaviour — every op is
	// confirmed by its own barrier before the next is issued — which the
	// fleet service and benchmarks use to measure pipelining wins.
	// Negative values are rejected by the constructors.
	AsyncWindow int
}

// ctrlTelemetry bundles the controller-side handles, resolved once at
// construction. All handles are nil-safe.
type ctrlTelemetry struct {
	tracer       *telemetry.Tracer
	msgsIn       *telemetry.Counter
	msgsOut      *telemetry.Counter
	notifyDrop   *telemetry.Counter
	asyncQueued  *telemetry.Counter
	asyncFlushes *telemetry.Counter
	asyncWrites  *telemetry.Counter
	hHandshake   *telemetry.Histogram

	// xid-level span segments of the pipelined send path (async.go). Each
	// async op is split so queueing delay is visible separately from wire
	// round trip — the separation that guards the serial-measurement-probe
	// invariant: measurement RTTs must never include time an op spent
	// waiting behind a window.
	hSubmitEnqueue *telemetry.Histogram // FlowModAsync entry → frame handed to writer
	hQueueWire     *telemetry.Histogram // writer queue wait → bytes on the wire
	hWireBarrier   *telemetry.Histogram // wire write → covering barrier resolved
}

func (t *ctrlTelemetry) init(opts ControllerOptions) {
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.Default()
	}
	t.tracer = opts.Tracer
	if t.tracer == nil {
		t.tracer = telemetry.DefaultTracer()
	}
	t.msgsIn = reg.Counter("ofconn.controller.msgs_in")
	t.msgsOut = reg.Counter("ofconn.controller.msgs_out")
	t.notifyDrop = reg.Counter("ofconn.controller.notify_dropped")
	t.asyncQueued = reg.Counter("ofconn.controller.async_queued")
	t.asyncFlushes = reg.Counter("ofconn.controller.async_flushes")
	t.asyncWrites = reg.Counter("ofconn.controller.async_writes")
	t.hHandshake = reg.Histogram("ofconn.controller.handshake_ns")
	t.hSubmitEnqueue = reg.Histogram("ofconn.controller.span.submit_enqueue_ns")
	t.hQueueWire = reg.Histogram("ofconn.controller.span.queue_wire_ns")
	t.hWireBarrier = reg.Histogram("ofconn.controller.span.wire_barrier_ns")
}

// spansEnabled reports whether per-op timestamping is worth the time.Now
// calls: false exactly when no registry and no tracer is bound, keeping the
// uninstrumented async path free of clock reads.
func (t *ctrlTelemetry) spansEnabled() bool {
	return t.hSubmitEnqueue != nil || t.tracer != nil
}

// ErrClosed is returned for operations on a closed controller connection.
var ErrClosed = errors.New("ofconn: connection closed")

// timeoutError is the concrete type behind ErrTimeout. It carries the
// Timeout/Transient markers (net.Error convention and the probe engine's
// retry classifier, respectively): a reply that never came is worth
// retrying, unlike a closed connection.
type timeoutError struct{}

func (timeoutError) Error() string   { return "ofconn: timed out awaiting switch reply" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Transient() bool { return true }

// ErrTimeout is returned when ControllerOptions.Timeout elapses before the
// switch replies. Match it with errors.Is.
var ErrTimeout error = timeoutError{}

// Dial connects to an OpenFlow switch at addr, performs the HELLO and
// FEATURES handshake, and returns a ready controller.
func Dial(addr string) (*Controller, error) {
	return DialOptions(addr, ControllerOptions{})
}

// DialOptions is Dial with explicit telemetry bindings.
func DialOptions(addr string, opts ControllerOptions) (*Controller, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewControllerOptions(conn, opts)
}

// NewController wraps an established connection (also used in tests over
// net.Pipe) and performs the handshake.
func NewController(conn net.Conn) (*Controller, error) {
	return NewControllerOptions(conn, ControllerOptions{})
}

// NewControllerOptions is NewController with explicit telemetry bindings.
func NewControllerOptions(conn net.Conn, opts ControllerOptions) (*Controller, error) {
	if opts.AsyncWindow < 0 {
		conn.Close()
		return nil, fmt.Errorf("ofconn: AsyncWindow %d is negative", opts.AsyncWindow)
	}
	window := opts.AsyncWindow
	if window == 0 {
		window = asyncWindow
	}
	c := &Controller{
		conn:    conn,
		pending: make(map[uint32]chan openflow.Message),
		closed:  make(chan struct{}),
		notify:  make(chan openflow.Message, 256),
		timeout: opts.Timeout,
		window:  window,
	}
	c.tel.init(opts)
	c.tel.tracer.Instant("ofconn.dial", "", map[string]any{"remote": conn.RemoteAddr().String()})
	go c.readLoop()
	start := time.Now()
	if err := c.handshake(); err != nil {
		c.Close()
		return nil, err
	}
	// Handshake latency is wall time: this path talks to a real socket.
	c.tel.hHandshake.Observe(float64(time.Since(start)))
	return c, nil
}

func (c *Controller) readLoop() {
	for {
		msg, err := openflow.ReadMessage(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for xid, ch := range c.pending {
				close(ch)
				delete(c.pending, xid)
			}
			c.mu.Unlock()
			close(c.closed)
			return
		}
		c.tel.msgsIn.Add(1)
		if msg.Type() == openflow.TypeHello {
			continue // connection-opening pleasantry, not awaited
		}
		c.mu.Lock()
		ch, ok := c.pending[msg.XID()]
		if ok {
			delete(c.pending, msg.XID())
		}
		c.mu.Unlock()
		if ok {
			ch <- msg
			continue
		}
		// Unsolicited messages (FLOW_REMOVED, PORT_STATUS, async PacketIn)
		// go to the notification queue; the oldest is dropped when full.
		for {
			select {
			case c.notify <- msg:
			default:
				select {
				case <-c.notify:
					c.tel.notifyDrop.Add(1)
				default:
				}
				continue
			}
			break
		}
	}
}

// Notifications returns the stream of unsolicited switch messages.
func (c *Controller) Notifications() <-chan openflow.Message { return c.notify }

// register allocates an xid and a 1-buffered reply channel for it.
func (c *Controller) register() (uint32, chan openflow.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return 0, nil, ErrClosed
	}
	c.nextXID++
	xid := c.nextXID
	ch := make(chan openflow.Message, 1)
	c.pending[xid] = ch
	return xid, ch, nil
}

// unregister abandons a pending xid (used when no reply is expected after
// all, e.g. a flow-mod that succeeded silently).
func (c *Controller) unregister(xid uint32) {
	c.mu.Lock()
	delete(c.pending, xid)
	c.mu.Unlock()
}

func (c *Controller) send(m openflow.Message) error {
	if err := openflow.WriteMessage(c.conn, m); err != nil {
		return err
	}
	c.tel.msgsOut.Add(1)
	return nil
}

// await blocks for the reply to xid on ch, bounded by the configured
// timeout (when set). On timeout the xid is unregistered; a straggler reply
// arriving later lands in the 1-buffered channel and is garbage-collected.
func (c *Controller) await(xid uint32, ch chan openflow.Message) (openflow.Message, error) {
	if c.timeout <= 0 {
		msg, ok := <-ch
		if !ok {
			return nil, ErrClosed
		}
		return msg, nil
	}
	t := time.NewTimer(c.timeout)
	defer t.Stop()
	select {
	case msg, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		return msg, nil
	case <-t.C:
		c.unregister(xid)
		return nil, ErrTimeout
	}
}

func (c *Controller) handshake() error {
	if err := c.send(&openflow.Hello{}); err != nil {
		return err
	}
	xid, ch, err := c.register()
	if err != nil {
		return err
	}
	if err := c.send(&openflow.FeaturesRequest{Header: openflow.Header{Xid: xid}}); err != nil {
		return err
	}
	msg, err := c.await(xid, ch)
	if err != nil {
		return err
	}
	fr, ok := msg.(*openflow.FeaturesReply)
	if !ok {
		return fmt.Errorf("ofconn: handshake got %v, want FEATURES_REPLY", msg.Type())
	}
	c.features = fr
	return nil
}

// Features returns the switch's features reply from the handshake.
func (c *Controller) Features() *openflow.FeaturesReply { return c.features }

// TelemetryLabel implements probe.LabeledDevice with the switch's datapath
// ID, so engines over a live channel auto-bind a per-switch histogram child
// and flight-recorder track just like emulated devices do. Fleets override
// it afterwards with their member names via SetLabel.
func (c *Controller) TelemetryLabel() string {
	return fmt.Sprintf("dpid-%#x", c.features.DatapathID)
}

// FlowMod sends the flow-mod followed by a barrier and waits for the
// barrier reply, so the operation is confirmed complete. A switch-side
// rejection surfaces as the *openflow.Error. The flow-mod's XID is
// assigned by the controller.
func (c *Controller) FlowMod(fm *openflow.FlowMod) error {
	if err := c.fence(); err != nil {
		return err
	}
	fmXID, errCh, err := c.register()
	if err != nil {
		return err
	}
	fm.SetXID(fmXID)
	barXID, barCh, err := c.register()
	if err != nil {
		c.unregister(fmXID)
		return err
	}
	if err := c.send(fm); err != nil {
		// Both XIDs must be released on every error path: a leaked entry
		// stays in pending forever and misroutes a late reply that happens
		// to reuse the XID after wraparound.
		c.unregister(fmXID)
		c.unregister(barXID)
		return err
	}
	if err := c.send(&openflow.BarrierRequest{Header: openflow.Header{Xid: barXID}}); err != nil {
		c.unregister(fmXID)
		c.unregister(barXID)
		return err
	}
	if _, err := c.await(barXID, barCh); err != nil {
		// await already unregistered barXID on timeout; unregistering again
		// is a harmless idempotent delete, and covers the other error paths.
		c.unregister(fmXID)
		c.unregister(barXID)
		return err
	}
	// The agent loop writes any error before the barrier reply, so a
	// non-blocking check is race free.
	c.unregister(fmXID)
	select {
	case msg := <-errCh:
		if oe, ok := msg.(*openflow.Error); ok {
			if oe.IsTableFull() {
				return switchsim.ErrTableFull
			}
			return oe
		}
		return nil
	default:
		return nil
	}
}

// FlowMods sends a batch of flow-mods followed by a single barrier — the
// batching shape real controllers (and the Tango scheduler) use, paying one
// round trip per batch instead of per op. It returns the first switch-side
// rejection, if any; later ops in the batch still execute (OpenFlow has no
// transactional abort).
func (c *Controller) FlowMods(fms []*openflow.FlowMod) error {
	if err := c.fence(); err != nil {
		return err
	}
	// unwind releases every XID registered so far; called on each error
	// path so no pending entry outlives the batch.
	registered := 0
	unwind := func() {
		for _, fm := range fms[:registered] {
			c.unregister(fm.XID())
		}
	}
	errChs := make([]chan openflow.Message, len(fms))
	for i, fm := range fms {
		xid, ch, err := c.register()
		if err != nil {
			unwind()
			return err
		}
		fm.SetXID(xid)
		errChs[i] = ch
		registered++
		if err := c.send(fm); err != nil {
			unwind()
			return err
		}
	}
	barXID, barCh, err := c.register()
	if err != nil {
		unwind()
		return err
	}
	if err := c.send(&openflow.BarrierRequest{Header: openflow.Header{Xid: barXID}}); err != nil {
		unwind()
		c.unregister(barXID)
		return err
	}
	if _, err := c.await(barXID, barCh); err != nil {
		unwind()
		c.unregister(barXID)
		return err
	}
	var first error
	for i, ch := range errChs {
		c.unregister(fms[i].XID())
		select {
		case msg := <-ch:
			if oe, ok := msg.(*openflow.Error); ok && first == nil {
				if oe.IsTableFull() {
					first = switchsim.ErrTableFull
				} else {
					first = oe
				}
			}
		default:
		}
	}
	return first
}

// SendProbe injects a probe frame via PACKET_OUT and measures the wall-time
// until the reflected PACKET_IN returns. punted reports whether the switch
// punted the frame (NO_MATCH) rather than forwarding it.
func (c *Controller) SendProbe(data []byte, inPort uint16) (rtt time.Duration, punted bool, err error) {
	// Probes measure RTT from the send; an unflushed window would let the
	// writer's bytes land in front of ours, so fence first. The fence is
	// free when nothing is pipelined.
	if err := c.fence(); err != nil {
		return 0, false, err
	}
	xid, ch, err := c.register()
	if err != nil {
		return 0, false, err
	}
	out := &openflow.PacketOut{
		Header:   openflow.Header{Xid: xid},
		BufferID: 0xffffffff,
		InPort:   inPort,
		Data:     data,
	}
	start := time.Now()
	if err := c.send(out); err != nil {
		return 0, false, err
	}
	msg, err := c.await(xid, ch)
	if err != nil {
		return 0, false, err
	}
	rtt = time.Since(start)
	pin, ok := msg.(*openflow.PacketIn)
	if !ok {
		return 0, false, fmt.Errorf("ofconn: probe got %v, want PACKET_IN", msg.Type())
	}
	return rtt, pin.Reason == openflow.ReasonNoMatch, nil
}

// Echo measures a control-channel round trip.
func (c *Controller) Echo() (time.Duration, error) {
	if err := c.fence(); err != nil {
		return 0, err
	}
	xid, ch, err := c.register()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := c.send(&openflow.EchoRequest{Header: openflow.Header{Xid: xid}, Data: []byte("tango")}); err != nil {
		return 0, err
	}
	if _, err := c.await(xid, ch); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// TableStats fetches the switch's table statistics.
func (c *Controller) TableStats() ([]openflow.TableStats, error) {
	if err := c.fence(); err != nil {
		return nil, err
	}
	xid, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	req := &openflow.StatsRequest{Header: openflow.Header{Xid: xid}, StatsType: openflow.StatsTypeTable}
	if err := c.send(req); err != nil {
		return nil, err
	}
	msg, err := c.await(xid, ch)
	if err != nil {
		return nil, err
	}
	sr, ok := msg.(*openflow.StatsReply)
	if !ok {
		return nil, fmt.Errorf("ofconn: got %v, want STATS_REPLY", msg.Type())
	}
	return sr.Tables, nil
}

// FlowStats fetches flow statistics for all rules.
func (c *Controller) FlowStats() ([]openflow.FlowStats, error) {
	if err := c.fence(); err != nil {
		return nil, err
	}
	xid, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	req := &openflow.StatsRequest{
		Header:      openflow.Header{Xid: xid},
		StatsType:   openflow.StatsTypeFlow,
		FlowTableID: 0xff,
		FlowOutPort: openflow.PortNone,
	}
	if err := c.send(req); err != nil {
		return nil, err
	}
	msg, err := c.await(xid, ch)
	if err != nil {
		return nil, err
	}
	sr, ok := msg.(*openflow.StatsReply)
	if !ok {
		return nil, fmt.Errorf("ofconn: got %v, want STATS_REPLY", msg.Type())
	}
	return sr.Flows, nil
}

// Now returns the wall-clock time; with a TCP device, probing measures real
// elapsed time.
func (c *Controller) Now() time.Time { return time.Now() }

// Sleep blocks for d of wall time. It gives the probe engine's retry
// backoff (and fault-injection latencies) a clock to charge against,
// mirroring SimDevice.Sleep on the virtual-time path.
func (c *Controller) Sleep(d time.Duration) { time.Sleep(d) }

// Close tears down the connection. Unflushed pipelined ops are abandoned:
// their completions resolve with an error on the next Wait or Flush, never
// with success.
func (c *Controller) Close() error {
	c.tel.tracer.Instant("ofconn.controller.close", "", nil)
	err := c.conn.Close()
	c.shutdownAsync()
	return err
}
