package ofconn

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/core/probe"
)

// Fleet manages a controller's OpenFlow connections to a set of switches
// and probes each of them into a shared Tango score database — the
// controller-side assembly of Figure 4: Probing Engine feeding the Score
// Database feeding the Network Scheduler. All methods are safe for
// concurrent use; the continuous-inference service (internal/fleet) mutates
// membership while probes are in flight.
type Fleet struct {
	mu      sync.Mutex
	members map[string]*Controller
	// names caches the sorted member-name slice; nil means dirty. Every
	// mutation (Connect/Close) invalidates it, so repeated Names/ProbeAll
	// calls on a stable fleet sort once, not per call.
	names []string
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{members: map[string]*Controller{}}
}

// Connect dials a switch and adds it under the given name, replacing (and
// closing) any previous member with that name.
func (f *Fleet) Connect(name, addr string) error {
	return f.ConnectOptions(name, addr, ControllerOptions{})
}

// ConnectOptions is Connect with explicit controller options (reply
// timeout, async window, telemetry bindings) — the fleet service uses it to
// tune in-flight depth per member.
func (f *Fleet) ConnectOptions(name, addr string, opts ControllerOptions) error {
	c, err := DialOptions(addr, opts)
	if err != nil {
		return fmt.Errorf("ofconn: fleet connect %s: %w", name, err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if old, ok := f.members[name]; ok {
		old.Close()
	}
	f.members[name] = c
	f.names = nil
	return nil
}

// Controller returns the named member.
func (f *Fleet) Controller(name string) (*Controller, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.members[name]
	return c, ok
}

// Names returns member names, sorted. The returned slice is shared between
// callers and must not be mutated; membership changes produce a fresh
// slice, so a held snapshot stays internally consistent.
func (f *Fleet) Names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.namesLocked()
}

func (f *Fleet) namesLocked() []string {
	if f.names == nil {
		f.names = make([]string, 0, len(f.members))
		for n := range f.members {
			f.names = append(f.names, n)
		}
		sort.Strings(f.names)
	}
	return f.names
}

// Len returns the member count.
func (f *Fleet) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.members)
}

// Engines returns one probing engine per member, keyed by name — the map
// the scheduler's EngineExecutor consumes.
func (f *Fleet) Engines() map[string]*probe.Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]*probe.Engine, len(f.members))
	for n, c := range f.members {
		e := probe.NewEngine(c)
		// TCP controllers carry no device label; the member name is the
		// switch's identity here, so per-switch RTT telemetry keys on it.
		e.SetLabel(n)
		out[n] = e
	}
	return out
}

// ProbeAll fits a control-channel score card for every member and stores
// them in db under the member names. Members are probed concurrently on a
// bounded worker pool (GOMAXPROCS wide) — each probe only loads its own
// switch, and the pool keeps a large fleet from dialing up one goroutine
// per member. The aggregated error lists member failures in sorted member
// order, deterministically; match individual causes with errors.Is/As.
func (f *Fleet) ProbeAll(db *pattern.DB, opts infer.CostOptions) error {
	return f.ProbeAllN(db, opts, 0)
}

// ProbeAllN is ProbeAll with an explicit worker bound (0 = GOMAXPROCS,
// 1 = serial).
func (f *Fleet) ProbeAllN(db *pattern.DB, opts infer.CostOptions, workers int) error {
	// Snapshot membership; members removed concurrently are skipped (their
	// slot stays nil), members added concurrently are not probed.
	f.mu.Lock()
	names := append([]string(nil), f.namesLocked()...)
	ctrls := make([]*Controller, len(names))
	for i, n := range names {
		ctrls[i] = f.members[n]
	}
	f.mu.Unlock()

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	// One slot per member: workers write disjoint indexes, and the join
	// below reads them in sorted member order, so the aggregate error is
	// identical at any worker count.
	errs := make([]error, len(names))
	next := make(chan int, len(names))
	for i := range names {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				c := ctrls[i]
				if c == nil {
					continue
				}
				e := probe.NewEngine(c)
				e.SetLabel(names[i])
				card, err := infer.MeasureCosts(e, names[i], opts)
				if err != nil {
					errs[i] = fmt.Errorf("ofconn: probing %s: %w", names[i], err)
					continue
				}
				db.PutScore(card)
			}
		}()
	}
	wg.Wait()
	var all []error
	for _, err := range errs {
		if err != nil {
			all = append(all, err)
		}
	}
	return errors.Join(all...)
}

// Close tears down every connection.
func (f *Fleet) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.members {
		c.Close()
	}
	f.members = map[string]*Controller{}
	f.names = nil
}
