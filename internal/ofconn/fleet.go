package ofconn

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/core/probe"
)

// Fleet manages a controller's OpenFlow connections to a set of switches
// and probes each of them into a shared Tango score database — the
// controller-side assembly of Figure 4: Probing Engine feeding the Score
// Database feeding the Network Scheduler.
type Fleet struct {
	mu      sync.Mutex
	members map[string]*Controller
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{members: map[string]*Controller{}}
}

// Connect dials a switch and adds it under the given name, replacing (and
// closing) any previous member with that name.
func (f *Fleet) Connect(name, addr string) error {
	c, err := Dial(addr)
	if err != nil {
		return fmt.Errorf("ofconn: fleet connect %s: %w", name, err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if old, ok := f.members[name]; ok {
		old.Close()
	}
	f.members[name] = c
	return nil
}

// Controller returns the named member.
func (f *Fleet) Controller(name string) (*Controller, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.members[name]
	return c, ok
}

// Names returns member names, sorted.
func (f *Fleet) Names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.members))
	for n := range f.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Engines returns one probing engine per member, keyed by name — the map
// the scheduler's EngineExecutor consumes.
func (f *Fleet) Engines() map[string]*probe.Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]*probe.Engine, len(f.members))
	for n, c := range f.members {
		e := probe.NewEngine(c)
		// TCP controllers carry no device label; the member name is the
		// switch's identity here, so per-switch RTT telemetry keys on it.
		e.SetLabel(n)
		out[n] = e
	}
	return out
}

// ProbeAll fits a control-channel score card for every member and stores
// them in db under the member names. Members are probed concurrently —
// each probe only loads its own switch.
func (f *Fleet) ProbeAll(db *pattern.DB, opts infer.CostOptions) error {
	f.mu.Lock()
	members := make(map[string]*Controller, len(f.members))
	for n, c := range f.members {
		members[n] = c
	}
	f.mu.Unlock()

	var wg sync.WaitGroup
	errs := make(chan error, len(members))
	for name, c := range members {
		wg.Add(1)
		go func(name string, c *Controller) {
			defer wg.Done()
			e := probe.NewEngine(c)
			e.SetLabel(name)
			card, err := infer.MeasureCosts(e, name, opts)
			if err != nil {
				errs <- fmt.Errorf("ofconn: probing %s: %w", name, err)
				return
			}
			db.PutScore(card)
		}(name, c)
	}
	wg.Wait()
	close(errs)
	// Surface every member's failure, not just the first drained: with the
	// probes running concurrently, "first" was arbitrary and the rest were
	// silently discarded. Member order in the error is nondeterministic
	// (map iteration + goroutine scheduling); match with errors.Is/As.
	var all []error
	for err := range errs {
		all = append(all, err)
	}
	return errors.Join(all...)
}

// Close tears down every connection.
func (f *Fleet) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.members {
		c.Close()
	}
	f.members = map[string]*Controller{}
}
