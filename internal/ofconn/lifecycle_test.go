package ofconn

import (
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

// leakCheck snapshots the goroutine count and returns a func that fails the
// test if the count has not returned to the baseline within a few seconds —
// the assertion that Shutdown releases every server goroutine.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestAsyncWindowOneSerial pins the satellite contract: AsyncWindow=1
// degenerates the pipelined path to serial behaviour. Every FlowModAsync
// past the first forces a flush of its predecessor, so after issuing op i
// the completion for op i-1 is already resolved and exactly one XID is ever
// pending; the flush counter records one barrier per op.
func TestAsyncWindowOneSerial(t *testing.T) {
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	reg := telemetry.NewRegistry()
	c, err := DialOptions(addr, ControllerOptions{AsyncWindow: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 9
	comps := make([]*Completion, n)
	for i := 0; i < n; i++ {
		cp, err := c.FlowModAsync(probeAdd(uint32(i)))
		if err != nil {
			t.Fatalf("FlowModAsync %d: %v", i, err)
		}
		comps[i] = cp
		if i > 0 {
			if err, ok := comps[i-1].Err(); !ok {
				t.Fatalf("op %d unresolved after issuing op %d: window=1 must be serial", i-1, i)
			} else if err != nil {
				t.Fatalf("op %d: %v", i-1, err)
			}
		}
		if got := c.pendingLen(); got != 1 {
			t.Fatalf("after op %d: pending XIDs = %d, want 1", i, got)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := comps[n-1].Wait(); err != nil {
		t.Fatalf("last op: %v", err)
	}
	// n-1 forced flushes plus the explicit one: one barrier per op.
	if got := reg.Counter("ofconn.controller.async_flushes").Value(); got != n {
		t.Fatalf("async_flushes = %d, want %d (one per op)", got, n)
	}
	flows, err := c.FlowStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != n {
		t.Fatalf("installed %d rules, want %d", len(flows), n)
	}
}

// TestAsyncWindowValidation rejects negative windows at construction and
// accepts an explicit override larger than the default.
func TestAsyncWindowValidation(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	if _, err := NewControllerOptions(client, ControllerOptions{AsyncWindow: -1}); err == nil {
		t.Fatal("AsyncWindow=-1 accepted, want error")
	} else if !strings.Contains(err.Error(), "negative") {
		t.Fatalf("error %q does not name the negative window", err)
	}

	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	c, err := DialOptions(addr, ControllerOptions{AsyncWindow: 3 * asyncWindow})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.window != 3*asyncWindow {
		t.Fatalf("window = %d, want %d", c.window, 3*asyncWindow)
	}
	// Zero still selects the default.
	c2, err := DialOptions(addr, ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.window != asyncWindow {
		t.Fatalf("default window = %d, want %d", c2.window, asyncWindow)
	}
}

// TestServerShutdownDrains is the graceful path: a server under live traffic
// shuts down within grace, Serve returns nil, in-flight operations either
// complete or fail with a connection error (never hang), and every server
// goroutine is released.
func TestServerShutdownDrains(t *testing.T) {
	check := leakCheck(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	srv := NewServer(ln, sw, ServeOptions{Metrics: telemetry.NewRegistry()})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Live traffic across the shutdown: ops complete until the half-close
	// cuts the request stream, then fail fast with a connection error.
	opsDone := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			if err := c.FlowMod(probeAdd(uint32(i))); err != nil {
				opsDone <- err
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond) // let some ops land

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v (want graceful drain, not forced)", err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve after Shutdown: %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	select {
	case err := <-opsDone:
		if err == nil {
			t.Fatal("op loop ended without an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight op hung across Shutdown: drain failed")
	}
	// Installed state survived: at least one op drained before the cut.
	if tcam, hw, sv := sw.RuleCount(); tcam+hw+sv == 0 {
		t.Fatal("no ops landed before shutdown")
	}
	// New connections are refused.
	if c2, err := Dial(srv.Addr().String()); err == nil {
		c2.Close()
		t.Fatal("dial after shutdown succeeded")
	}
	// Idempotent.
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	c.Close()
	check()
}

// TestServerShutdownImmediate covers grace<=0: connections are force-closed,
// Shutdown still returns promptly with every goroutine released, and clients
// see connection errors rather than hangs.
func TestServerShutdownImmediate(t *testing.T) {
	check := leakCheck(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	srv := NewServer(ln, sw, ServeOptions{Metrics: telemetry.NewRegistry()})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := srv.Shutdown(0); err != nil {
		t.Fatalf("Shutdown(0): %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- c.FlowMod(probeAdd(1)) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("op on force-closed server succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("op on force-closed server hung")
	}
	c.Close()
	check()
}

// TestFleetConcurrentUse exercises the fleet's locking under -race:
// Connect/Names/Controller/Len/ProbeAll racing from several goroutines, with
// member replacement (Connect on an existing name closes the old
// controller).
func TestFleetConcurrentUse(t *testing.T) {
	fleet := NewFleet()
	defer fleet.Close()
	sw := switchsim.New(switchsim.Switch1(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"a", "b", "c", "d"}
			for i := 0; i < 8; i++ {
				name := names[(w+i)%len(names)]
				if err := fleet.Connect(name, addr); err != nil {
					t.Errorf("Connect %s: %v", name, err)
					return
				}
				fleet.Names()
				fleet.Controller(name)
				fleet.Len()
			}
		}(w)
	}
	wg.Wait()
	got := fleet.Names()
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
	db := pattern.NewDB()
	if err := fleet.ProbeAll(db, infer.CostOptions{Samples: 8}); err != nil {
		t.Fatalf("ProbeAll: %v", err)
	}
	for _, n := range want {
		if _, ok := db.Score(n); !ok {
			t.Fatalf("no score card for %s", n)
		}
	}
}

// TestFleetNamesCached proves the sorted-names cache: a stable fleet returns
// the identical slice across calls (no re-sort), and any mutation
// invalidates it.
func TestFleetNamesCached(t *testing.T) {
	fleet := NewFleet()
	defer fleet.Close()
	sw := switchsim.New(switchsim.Switch1(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	for _, n := range []string{"b", "a"} {
		if err := fleet.Connect(n, addr); err != nil {
			t.Fatal(err)
		}
	}
	first := fleet.Names()
	second := fleet.Names()
	if len(first) != 2 || first[0] != "a" || first[1] != "b" {
		t.Fatalf("names = %v", first)
	}
	if &first[0] != &second[0] {
		t.Fatal("stable fleet re-built the names slice; cache not in effect")
	}
	if err := fleet.Connect("c", addr); err != nil {
		t.Fatal(err)
	}
	third := fleet.Names()
	if len(third) != 3 || third[2] != "c" {
		t.Fatalf("names after Connect = %v", third)
	}
	if len(first) != 2 {
		t.Fatal("held snapshot mutated by later Connect")
	}
}

// TestFleetProbeAllDeterministicErrors proves the satellite's aggregation
// contract: member failures surface in sorted member order regardless of the
// worker count, so the joined error text is identical serial vs parallel.
func TestFleetProbeAllDeterministicErrors(t *testing.T) {
	build := func() *Fleet {
		t.Helper()
		fleet := NewFleet()
		t.Cleanup(fleet.Close)
		for _, n := range []string{"s1", "s2", "s3", "s4"} {
			sw := switchsim.New(switchsim.Switch1(), switchsim.WithClock(fastClock()))
			if err := fleet.Connect(n, startSwitch(t, sw)); err != nil {
				t.Fatal(err)
			}
		}
		// Kill two members: their probes fail with ErrClosed, the others
		// succeed.
		for _, n := range []string{"s2", "s4"} {
			c, ok := fleet.Controller(n)
			if !ok {
				t.Fatalf("member %s missing", n)
			}
			c.Close()
		}
		return fleet
	}
	texts := make([]string, 2)
	for i, workers := range []int{1, 4} {
		db := pattern.NewDB()
		err := build().ProbeAllN(db, infer.CostOptions{Samples: 8}, workers)
		if err == nil {
			t.Fatalf("workers=%d: no error from dead members", workers)
		}
		texts[i] = err.Error()
		for _, n := range []string{"s1", "s3"} {
			if _, ok := db.Score(n); !ok {
				t.Fatalf("workers=%d: live member %s missing a score card", workers, n)
			}
		}
		if i2 := strings.Index(texts[i], "s2"); i2 < 0 || i2 > strings.Index(texts[i], "s4") {
			t.Fatalf("workers=%d: failures out of member order: %q", workers, texts[i])
		}
	}
	if texts[0] != texts[1] {
		t.Fatalf("aggregate error differs by worker count:\n  1: %q\n  4: %q", texts[0], texts[1])
	}
}
