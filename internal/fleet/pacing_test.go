package fleet

import (
	"reflect"
	"testing"
	"time"
)

// fakeTime is an injectable clock whose sleep advances it, so bucket tests
// run instantly and deterministically.
type fakeTime struct{ t time.Time }

func newFakeTime() *fakeTime {
	return &fakeTime{t: time.Date(2014, 12, 2, 0, 0, 0, 0, time.UTC)}
}
func (f *fakeTime) now() time.Time          { return f.t }
func (f *fakeTime) sleep(d time.Duration)   { f.t = f.t.Add(d) }
func (f *fakeTime) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestTokenBucketUnlimited(t *testing.T) {
	b := newTokenBucket(0, 0, nil, nil)
	if b != nil {
		t.Fatal("rate 0 should disable the bucket")
	}
	// nil receivers are no-ops.
	if w := b.admit(); w != 0 {
		t.Fatalf("nil admit waited %v", w)
	}
	b.charge(1e9)
}

func TestTokenBucketSolventAdmitsFree(t *testing.T) {
	ft := newFakeTime()
	b := newTokenBucket(100, 50, ft.now, ft.sleep)
	for i := 0; i < 10; i++ {
		if w := b.admit(); w != 0 {
			t.Fatalf("admit %d waited %v while solvent", i, w)
		}
		b.charge(5) // burst 50 covers 10 charges exactly; balance hits 0
	}
	if b.tokens > 0 {
		t.Fatalf("tokens = %v after spending the burst, want <= 0", b.tokens)
	}
}

func TestTokenBucketOverdraftWaits(t *testing.T) {
	ft := newFakeTime()
	b := newTokenBucket(100, 50, ft.now, ft.sleep) // 100 tokens/sec, starts at 50
	b.charge(150)                                  // overdraft: balance -100
	w := b.admit()
	if want := time.Second; w != want { // 100 tokens deficit at 100/sec
		t.Fatalf("admit waited %v, want %v", w, want)
	}
	if b.tokens < 0 {
		t.Fatalf("still insolvent after admit: %v", b.tokens)
	}
	// Solvent again: next admit is free.
	if w := b.admit(); w != 0 {
		t.Fatalf("second admit waited %v", w)
	}
}

func TestTokenBucketRefillCapsAtBurst(t *testing.T) {
	ft := newFakeTime()
	b := newTokenBucket(1000, 10, ft.now, ft.sleep)
	b.charge(10)
	ft.advance(time.Hour)
	b.refill()
	if b.tokens != 10 {
		t.Fatalf("tokens = %v after a long idle, want burst cap 10", b.tokens)
	}
}

// TestFleetPacingThrottles runs a paced fleet on the fake clock: rounds
// overdraw the per-switch budget, admissions wait, and the throttle ledger
// records it — while inference results stay identical to the unpaced run.
func TestFleetPacingThrottles(t *testing.T) {
	base, err := Run(testOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	ft := newFakeTime()
	o := testOptions(9)
	o.Workers = 1 // the fake clock is not goroutine-safe
	o.ProbeRate = 50
	o.ProbeBurst = 100
	o.now, o.sleep = ft.now, ft.sleep
	paced, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if paced.Throttles == 0 || paced.ThrottleWait == 0 {
		t.Fatalf("paced run never throttled: %d waits, %v total", paced.Throttles, paced.ThrottleWait)
	}
	if paced.InferErrs != 0 {
		t.Fatalf("pacing broke inference: %d errors", paced.InferErrs)
	}
	want, got := base.Deterministic(), paced.Deterministic()
	want.Workers, got.Workers = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Fatal("pacing changed deterministic results")
	}
}
