// Package fleet is the continuous-inference controller service: it holds a
// large mixed fleet of switches — in-process switchsim members on virtual
// clocks and real-TCP members reached through an ofconn.Fleet — and
// continuously probes, infers, and re-infers their properties, round after
// round, the in-deployment regime of §5–6 of the Tango paper rather than a
// one-off lab run.
//
// # Architecture
//
// Per-switch state (the probing engine, last inference, probe budget, RTT
// samples) lives in one member struct owned by exactly one shard worker:
// members are statically partitioned over a fixed worker pool by index
// stride, so the hot path takes no global lock — workers touch disjoint
// members, and cross-member aggregation happens only in the fold, on the
// caller's goroutine, in member order. Measurement probes stay strictly
// serial per switch (the invariant RTT clustering depends on: a queued
// probe would fold queueing delay into the measured RTT), while installs
// ride the pipelined async flow-mod channel; concurrency comes from
// multiplexing many switches' serial schedules across the pool.
//
// # Pacing
//
// Each member carries a token-bucket probe budget (Options.ProbeRate):
// rounds are admitted only while the bucket is solvent and are charged
// their actual probe count afterwards, so a switch that overdraws simply
// waits for refill instead of collapsing its neighbours' tail latency. A
// global in-flight cap (Options.MaxInflight) bounds how many members may be
// mid-round at once. Neither affects inference *results* — sim members run
// on virtual clocks — only wall-clock scheduling.
//
// # Determinism
//
// For simulation-only fleets every inference outcome is a function of
// (Options.Seed, member index, round) — never of the worker count or
// wall-clock interleaving — so Result.Deterministic() is byte-identical at
// 1 worker and N workers. TestFleetShardedDifferential enforces this.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"tango/internal/conformance"
	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/core/probe"
	"tango/internal/ofconn"
	"tango/internal/simclock"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

// Flow-ID regions keep the service's probe traffic disjoint: size probing
// sweeps upward from sizeFlowBase with a fresh per-round block, cost
// fitting uses MeasureCosts' own default block (3<<20), and the sentinel
// RTT probe sits far above both.
const (
	probePriority        = 1000
	sizeFlowBase  uint32 = 1 << 16
	sentinelBase  uint32 = 1 << 30
)

// Options configures a fleet run. The zero value is a small all-simulation
// fleet suitable for tests.
type Options struct {
	// Switches is the number of in-process simulated members (default 64).
	// Their profiles are drawn by conformance.GenerateSpecs(Switches, Seed),
	// so the fleet mixes policy-cache and TCAM-only hierarchies.
	Switches int
	// Workers is the shard worker-pool size (default GOMAXPROCS, capped at
	// the member count). Workers=1 is the serial reference the differential
	// test compares against.
	Workers int
	// Rounds is how many inference rounds Run executes per member (default
	// 2). The Service ignores it and loops until stopped.
	Rounds int
	// Seed fixes every RNG: member profiles, switch latency draws, and the
	// per-(member, round) inference seeds.
	Seed int64
	// MaxRules caps each size-inference round's probe rules (default 1024 —
	// the generated profiles' bounded tables reject well before that).
	MaxRules int
	// Trials fixes the sampling trials per cache level (default 2, the
	// scale harness' budget).
	Trials int
	// CostEvery runs control-channel cost fitting on simulated members
	// every CostEvery-th round (default 2; negative disables). TCP members
	// run cost fitting every round — it is their inference workload.
	CostEvery int
	// CostSamples is MeasureCosts' per-class op budget (default 32).
	CostSamples int
	// SentinelProbes is the per-round count of serial RTT measurement
	// probes against a sentinel rule (default 8); their RTTs feed the
	// fleet's p50/p99 and the flight tracks.
	SentinelProbes int
	// ProbeRate is each member's probe budget in probes/sec; 0 disables
	// pacing (and keeps wall time deterministic-friendly). ProbeBurst is
	// the bucket depth (default: one round's worth, 4*MaxRules).
	ProbeRate  float64
	ProbeBurst float64
	// MaxInflight bounds how many members may be mid-round at once across
	// all workers; 0 means no bound.
	MaxInflight int
	// TCP contributes real-TCP members: every member of the ofconn fleet
	// joins the run under its member name. The caller keeps ownership of
	// the fleet's lifecycle (see SpawnSimTCP for in-process servers).
	TCP *ofconn.Fleet
	// Registry receives the fleet-level fold (default: the process
	// registry); per-member engines always record into private registries
	// so the fold stays deterministic.
	Registry *telemetry.Registry
	// Flight receives per-switch sentinel RTT samples (default: the
	// process flight recorder, if installed).
	Flight *telemetry.FlightRecorder

	// Test hooks for the pacing layer; nil means real time.
	now   func() time.Time
	sleep func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.Switches == 0 && o.TCP == nil {
		o.Switches = 64
	}
	if o.Rounds <= 0 {
		o.Rounds = 2
	}
	if o.MaxRules <= 0 {
		o.MaxRules = 1024
	}
	if o.Trials <= 0 {
		o.Trials = 2
	}
	if o.CostEvery == 0 {
		o.CostEvery = 2
	}
	if o.CostSamples <= 0 {
		o.CostSamples = 32
	}
	if o.SentinelProbes <= 0 {
		o.SentinelProbes = 8
	}
	if o.ProbeBurst <= 0 {
		o.ProbeBurst = float64(4 * o.MaxRules)
	}
	if o.Registry == nil {
		o.Registry = telemetry.Default()
	}
	if o.Flight == nil {
		o.Flight = telemetry.DefaultFlight()
	}
	return o
}

// SwitchSummary is one member's end-of-run ledger. Every field is a
// deterministic function of (Options, member) for simulated members.
type SwitchSummary struct {
	Name string
	// TCP marks real-TCP members (cost-fitting workload, wall-clock RTTs).
	TCP bool
	// Rounds completed, Inferences that succeeded, Errs that did not.
	Rounds     int
	Inferences int
	Errs       int
	// Levels and CacheSize echo the last successful size inference
	// (simulated members only).
	Levels    int
	CacheSize int
	// ScoreCards counts cost-fitting rounds that produced a card.
	ScoreCards int
	// Op totals from the engine's ledger.
	FlowMods int64
	Probes   int64
	Punted   int64
}

// Result is a fleet run's folded outcome. The wall-derived fields (Wall,
// SwitchesPerSec, FlowModsPerSec, ThrottleWait) and the Workers echo are
// zeroed by Deterministic; everything else must be invariant under the
// worker count for simulation-only fleets.
type Result struct {
	Switches    int // simulated members
	TCPSwitches int
	Workers     int
	Rounds      int

	// Inferences counts completed inference rounds fleet-wide (size rounds
	// on simulated members, cost-fitting rounds on TCP members);
	// InferErrs the failures. ScoreCards counts cost cards stored.
	Inferences int
	InferErrs  int
	ScoreCards int

	// Op totals across every member's engine ledger.
	FlowMods int64
	Probes   int64
	Punted   int64

	// Sentinel RTT distribution. Simulated members contribute virtual
	// durations (deterministic); TCP members wall-clock ones.
	RTTSamples  int
	P50ProbeRTT time.Duration
	P99ProbeRTT time.Duration

	// Pacing activity: rounds that had to wait for budget, and for how
	// long in total (wall-derived).
	Throttles    int64
	ThrottleWait time.Duration

	PerSwitch []SwitchSummary

	// Wall-clock measurements, set by Run/Service.Stop.
	Wall           time.Duration
	SwitchesPerSec float64 // completed inferences per second
	FlowModsPerSec float64
}

// Deterministic returns a copy with the wall-derived fields and the
// worker-count echo zeroed; for simulation-only fleets the remainder must
// be invariant under Options.Workers.
func (r *Result) Deterministic() *Result {
	c := *r
	c.Workers = 0
	c.Wall, c.SwitchesPerSec, c.FlowModsPerSec = 0, 0, 0
	// Pacing activity depends on wall-clock interleaving, not results.
	c.Throttles, c.ThrottleWait = 0, 0
	return &c
}

// member is one switch's continuously re-inferred state. Exactly one shard
// worker touches a member during a round; the fold reads it only after the
// round barrier.
type member struct {
	idx  int
	name string
	tcp  bool
	sw   *switchsim.Switch // nil for TCP members
	eng  *probe.Engine
	reg  *telemetry.Registry
	trk  *telemetry.FlightTrack
	bkt  *tokenBucket

	last      probe.EngineStats
	rounds    int
	infers    int
	errs      int
	cards     int
	levels    int
	cacheSize int
	rtts      []time.Duration
	throttles int64
	throttle  time.Duration
}

// now returns the member's measurement timeline: the switch's virtual clock
// for simulated members, wall time for TCP ones.
func (m *member) now() time.Time {
	if m.sw != nil {
		return m.sw.Now()
	}
	return time.Now()
}

// runner owns a fleet's members and executes rounds over them. Run and
// Service share it.
type runner struct {
	o       Options
	members []*member
	gate    chan struct{}
	db      *pattern.DB
}

func newRunner(o Options) (*runner, error) {
	o = o.withDefaults()
	r := &runner{o: o, db: pattern.NewDB()}

	specs := conformance.GenerateSpecs(o.Switches, o.Seed)
	for i, spec := range specs {
		name := fmt.Sprintf("sim-%03d", i)
		sw := switchsim.New(spec.Profile,
			switchsim.WithClock(simclock.NewVirtual()),
			switchsim.WithSeed(spec.Seed),
		)
		m := &member{idx: i, name: name, sw: sw, reg: telemetry.NewRegistry()}
		m.eng = probe.NewEngine(probe.SimDevice{S: sw})
		r.initMember(m)
	}
	if o.TCP != nil {
		for _, name := range o.TCP.Names() {
			c, ok := o.TCP.Controller(name)
			if !ok {
				continue
			}
			m := &member{idx: len(r.members), name: name, tcp: true, reg: telemetry.NewRegistry()}
			m.eng = probe.NewEngine(c)
			r.initMember(m)
		}
	}
	if len(r.members) == 0 {
		return nil, fmt.Errorf("fleet: no members (Switches=0 and no TCP fleet)")
	}
	if r.o.Workers <= 0 {
		r.o.Workers = runtime.GOMAXPROCS(0)
	}
	if r.o.Workers > len(r.members) {
		r.o.Workers = len(r.members)
	}
	if o.MaxInflight > 0 {
		r.gate = make(chan struct{}, o.MaxInflight)
	}
	return r, nil
}

// initMember finishes a member's wiring: private telemetry (the engine's
// wall-clock flight binding is dropped — the runner records its own samples
// on the member timeline), the member-name label, pacing bucket, and the
// fleet flight track.
func (r *runner) initMember(m *member) {
	m.eng.SetTelemetry(m.reg, nil)
	m.eng.SetFlight(nil)
	m.eng.SetLabel(m.name)
	if r.o.Flight != nil {
		m.trk = r.o.Flight.Track(m.name)
	}
	m.bkt = newTokenBucket(r.o.ProbeRate, r.o.ProbeBurst, r.o.now, r.o.sleep)
	r.members = append(r.members, m)
}

// round executes one inference round for every member, shard-parallel when
// Workers > 1. Members are strided over workers by index, so assignment —
// and, per the determinism contract, everything else about the results — is
// independent of scheduling.
func (r *runner) round(n int) {
	if r.o.Workers <= 1 {
		for _, m := range r.members {
			r.runMember(m, n)
		}
		return
	}
	done := make(chan struct{}, r.o.Workers)
	for k := 0; k < r.o.Workers; k++ {
		go func(k int) {
			for i := k; i < len(r.members); i += r.o.Workers {
				r.runMember(r.members[i], n)
			}
			done <- struct{}{}
		}(k)
	}
	for k := 0; k < r.o.Workers; k++ {
		<-done
	}
}

// runMember is one member's round: budget admission, inference, cost
// fitting, sentinel RTT probes, and the ledger update. All probes inside
// are serial on the member's channel.
func (r *runner) runMember(m *member, round int) {
	if r.gate != nil {
		r.gate <- struct{}{}
		defer func() { <-r.gate }()
	}
	if w := m.bkt.admit(); w > 0 {
		m.throttles++
		m.throttle += w
	}

	if m.tcp {
		// TCP members' per-round inference is control-channel cost fitting:
		// robust under loopback jitter, unlike RTT-cluster size probing.
		card, err := infer.MeasureCosts(m.eng, m.name, infer.CostOptions{Samples: r.o.CostSamples})
		if err != nil {
			m.errs++
		} else {
			r.db.PutScore(card)
			m.cards++
			m.infers++
		}
	} else {
		base := sizeFlowBase + uint32(round)*uint32(2*r.o.MaxRules)
		res, err := infer.ProbeSizes(m.eng, infer.SizeOptions{
			Priority: probePriority,
			MaxRules: r.o.MaxRules,
			Trials:   r.o.Trials,
			// Per-(member, round) seed: worker count must never reach the
			// sampling RNG.
			Seed:       r.o.Seed + int64(m.idx)*1_000_003 + int64(round)*7919,
			FlowIDBase: base,
		})
		if err != nil {
			m.errs++
		} else {
			m.infers++
			m.levels = len(res.Levels)
			if len(res.Levels) > 0 {
				m.cacheSize = res.Levels[0].Census
			}
			m.eng.ClearProbeRules(base, uint32(res.RulesInstalled), probePriority)
		}
		if r.o.CostEvery > 0 && round%r.o.CostEvery == 0 {
			card, err := infer.MeasureCosts(m.eng, m.name, infer.CostOptions{Samples: r.o.CostSamples})
			if err != nil {
				m.errs++
			} else {
				r.db.PutScore(card)
				m.cards++
			}
		}
	}

	// Sentinel RTT probes: install one rule, measure it serially, remove
	// it. These are the fleet's probe-latency signal under load.
	sid := sentinelBase + uint32(round)
	if err := m.eng.Install(sid, probePriority); err != nil {
		m.errs++
	} else {
		for i := 0; i < r.o.SentinelProbes; i++ {
			rtt, punted, err := m.eng.Probe(sid)
			if err != nil {
				m.errs++
				break
			}
			m.rtts = append(m.rtts, rtt)
			if m.trk != nil {
				now := m.now()
				m.trk.Record(now, now, rtt, sid, punted)
			}
		}
		_ = m.eng.Delete(sid, probePriority)
	}

	m.rounds++
	st := m.eng.Stats()
	m.bkt.charge(float64(st.Probes - m.last.Probes))
	m.last = st
}

// fold aggregates member state into a Result, always in member order, and
// publishes the fleet-level metrics to the configured registry.
func (r *runner) fold() *Result {
	res := &Result{Workers: r.o.Workers}
	var all []time.Duration
	for _, m := range r.members {
		if m.tcp {
			res.TCPSwitches++
		} else {
			res.Switches++
		}
		if m.rounds > res.Rounds {
			res.Rounds = m.rounds
		}
		st := m.eng.Stats()
		res.FlowMods += st.FlowMods
		res.Probes += st.Probes
		res.Punted += st.Punted
		res.Inferences += m.infers
		res.InferErrs += m.errs
		res.ScoreCards += m.cards
		res.Throttles += m.throttles
		res.ThrottleWait += m.throttle
		all = append(all, m.rtts...)
		res.PerSwitch = append(res.PerSwitch, SwitchSummary{
			Name: m.name, TCP: m.tcp,
			Rounds: m.rounds, Inferences: m.infers, Errs: m.errs,
			Levels: m.levels, CacheSize: m.cacheSize, ScoreCards: m.cards,
			FlowMods: st.FlowMods, Probes: st.Probes, Punted: st.Punted,
		})
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.RTTSamples = len(all)
	if n := len(all); n > 0 {
		res.P50ProbeRTT = all[n/2]
		res.P99ProbeRTT = all[min(n-1, n*99/100)]
	}

	reg := r.o.Registry
	reg.Counter("fleet.inferences").Add(int64(res.Inferences))
	reg.Counter("fleet.infer_errs").Add(int64(res.InferErrs))
	reg.Counter("fleet.flow_mods").Add(res.FlowMods)
	reg.Counter("fleet.probes").Add(res.Probes)
	reg.Counter("fleet.throttles").Add(res.Throttles)
	reg.Gauge("fleet.switches").Set(int64(res.Switches + res.TCPSwitches))
	rounds := reg.CounterVec("fleet.rounds", "switch")
	for _, s := range res.PerSwitch {
		rounds.With(s.Name).Add(int64(s.Rounds))
	}
	hist := reg.Histogram("fleet.probe_rtt_ns")
	for _, d := range all {
		hist.Observe(float64(d))
	}
	return res
}

// Scores returns the score database the run's cost fitting filled — the
// scheduler's cost oracle for the whole fleet.
func (r *runner) scores() *pattern.DB { return r.db }

// Run executes Options.Rounds inference rounds over the fleet and returns
// the folded result with wall-clock rates.
func Run(o Options) (*Result, error) {
	r, err := newRunner(o)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for n := 0; n < r.o.Rounds; n++ {
		r.round(n)
	}
	wall := time.Since(start)
	res := r.fold()
	res.finishRates(wall)
	return res, nil
}

// finishRates stamps the wall-derived throughput fields.
func (r *Result) finishRates(wall time.Duration) {
	r.Wall = wall
	if wall > 0 {
		r.SwitchesPerSec = float64(r.Inferences) / wall.Seconds()
		r.FlowModsPerSec = float64(r.FlowMods) / wall.Seconds()
	}
}
