package fleet

import (
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"tango/internal/conformance"
	"tango/internal/ofconn"
	"tango/internal/simclock"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

// SimTCP is a set of real-TCP switches served in-process: each is a
// switchsim.Switch behind an ofconn.Server on its own loopback listener —
// the exact accept/agent path cmd/switchd runs — with controller
// connections held in an ofconn.Fleet. Benchmarks and smoke tests use it to
// mix genuine socket members into a fleet without forking processes.
type SimTCP struct {
	// Fleet holds the controller side: one connected member per server,
	// named tcp-000, tcp-001, ... Pass it as Options.TCP.
	Fleet   *ofconn.Fleet
	servers []*ofconn.Server
}

// SpawnSimTCP starts n TCP switches with profiles drawn from
// conformance.GenerateSpecs(n, seed), their emulated latencies compressed
// by scale (e.g. 1e-4 turns a 2ms latency into 200ns of real sleep), and
// connects a controller to each with copts. On any error everything
// already started is torn down.
func SpawnSimTCP(n int, seed int64, scale float64, copts ofconn.ControllerOptions) (*SimTCP, error) {
	s := &SimTCP{Fleet: ofconn.NewFleet()}
	quiet := log.New(io.Discard, "", 0)
	for i, spec := range conformance.GenerateSpecs(n, seed) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("fleet: tcp member %d: %w", i, err)
		}
		sw := switchsim.New(spec.Profile,
			switchsim.WithClock(&simclock.Real{Scale: scale}),
			switchsim.WithSeed(spec.Seed),
		)
		srv := ofconn.NewServer(ln, sw, ofconn.ServeOptions{
			Logger:  quiet,
			Metrics: telemetry.NewRegistry(),
		})
		s.servers = append(s.servers, srv)
		go srv.Serve()
		name := fmt.Sprintf("tcp-%03d", i)
		if err := s.Fleet.ConnectOptions(name, srv.Addr().String(), copts); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Len returns the member count.
func (s *SimTCP) Len() int { return len(s.servers) }

// Close disconnects every controller, then gracefully shuts every server
// down (draining in-flight ops within a short grace window).
func (s *SimTCP) Close() {
	s.Fleet.Close()
	for _, srv := range s.servers {
		_ = srv.Shutdown(time.Second)
	}
}
