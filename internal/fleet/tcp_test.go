package fleet

import (
	"strings"
	"testing"

	"tango/internal/ofconn"
	"tango/internal/telemetry"
)

// TestFleetMixedTCP runs a mixed fleet: simulated members alongside real
// TCP members served in-process through the cmd/switchd serve path. TCP
// members complete a cost-fitting inference each round and contribute
// sentinel RTTs; Close drains the servers cleanly.
func TestFleetMixedTCP(t *testing.T) {
	tcp, err := SpawnSimTCP(2, 7, 1e-6, ofconn.ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	if tcp.Len() != 2 {
		t.Fatalf("spawned %d servers, want 2", tcp.Len())
	}

	o := Options{
		Switches: 3,
		Rounds:   1,
		Seed:     7,
		MaxRules: 256,
		TCP:      tcp.Fleet,
		Registry: telemetry.NewRegistry(),
		Flight:   telemetry.NewFlightRecorder(64),
	}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 3 || res.TCPSwitches != 2 {
		t.Fatalf("members = %d sim + %d tcp, want 3 + 2", res.Switches, res.TCPSwitches)
	}
	if res.InferErrs != 0 {
		t.Fatalf("inference errors: %d", res.InferErrs)
	}
	if res.Inferences != 5 {
		t.Fatalf("inferences = %d, want 5", res.Inferences)
	}
	// Round 0 cost-fits every member: 3 sim (CostEvery) + 2 tcp (always).
	if res.ScoreCards != 5 {
		t.Fatalf("score cards = %d, want 5", res.ScoreCards)
	}
	tcpSeen := 0
	for _, s := range res.PerSwitch {
		if strings.HasPrefix(s.Name, "tcp-") {
			tcpSeen++
			if !s.TCP {
				t.Fatalf("%s not marked TCP", s.Name)
			}
			if s.Probes == 0 || s.FlowMods == 0 {
				t.Fatalf("%s: no ops recorded (%d probes, %d flow-mods)", s.Name, s.Probes, s.FlowMods)
			}
		}
	}
	if tcpSeen != 2 {
		t.Fatalf("tcp summaries = %d, want 2", tcpSeen)
	}
	// The flight recorder carries one track per member, sim and TCP alike.
	if tracks := o.Flight.Tracks(); len(tracks) != 5 {
		t.Fatalf("flight tracks = %v, want 5", tracks)
	}
}
