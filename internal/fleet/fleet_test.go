package fleet

import (
	"reflect"
	"testing"
	"time"

	"tango/internal/telemetry"
)

// testOptions is a small, fast fleet configuration. Every test builds on it
// so the determinism knobs stay in one place.
func testOptions(seed int64) Options {
	return Options{
		Switches: 12,
		Rounds:   2,
		Seed:     seed,
		MaxRules: 512,
		Registry: telemetry.NewRegistry(),
		Flight:   telemetry.NewFlightRecorder(64),
	}
}

// TestFleetShardedDifferential is the PR's core determinism gate: a
// simulation-only fleet folded at 1 worker and at N workers must produce
// byte-identical results (modulo the wall-derived fields) across multiple
// seeds. Run under -race in CI.
func TestFleetShardedDifferential(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		o := testOptions(seed)
		o.Workers = 1
		base, err := Run(o)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		if base.Inferences == 0 {
			t.Fatalf("seed %d: serial run inferred nothing", seed)
		}
		for _, workers := range []int{4, 7} {
			o := testOptions(seed)
			o.Workers = workers
			got, err := Run(o)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(base.Deterministic(), got.Deterministic()) {
				t.Errorf("seed %d: workers=%d result differs from serial\nserial: %+v\nsharded: %+v",
					seed, workers, base.Deterministic(), got.Deterministic())
			}
		}
	}
}

// TestFleetRunAccounting checks the fold's ledger arithmetic on a small
// run: every member completes every round, inference succeeds everywhere,
// per-switch summaries add up to the fleet totals, and the sentinel RTT
// distribution is populated.
func TestFleetRunAccounting(t *testing.T) {
	o := testOptions(11)
	reg := o.Registry
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != o.Switches || res.TCPSwitches != 0 {
		t.Fatalf("members = %d sim + %d tcp, want %d + 0", res.Switches, res.TCPSwitches, o.Switches)
	}
	if res.InferErrs != 0 {
		t.Fatalf("inference errors: %d (of %d inferences)", res.InferErrs, res.Inferences)
	}
	if res.Inferences != o.Switches*o.Rounds {
		t.Fatalf("inferences = %d, want %d", res.Inferences, o.Switches*o.Rounds)
	}
	if res.RTTSamples == 0 || res.P99ProbeRTT <= 0 || res.P50ProbeRTT > res.P99ProbeRTT {
		t.Fatalf("rtt distribution: samples=%d p50=%v p99=%v", res.RTTSamples, res.P50ProbeRTT, res.P99ProbeRTT)
	}
	var fm, probes int64
	for _, s := range res.PerSwitch {
		if s.Rounds != o.Rounds {
			t.Fatalf("%s: rounds = %d, want %d", s.Name, s.Rounds, o.Rounds)
		}
		// TCAM-only profiles (every 4th spec) cluster to one layer; the
		// policy-cache hierarchies to two or more.
		if s.Levels < 1 || s.CacheSize <= 0 {
			t.Fatalf("%s: levels=%d cacheSize=%d, want a layered inference", s.Name, s.Levels, s.CacheSize)
		}
		fm += s.FlowMods
		probes += s.Probes
	}
	if fm != res.FlowMods || probes != res.Probes {
		t.Fatalf("per-switch sums (%d fm, %d probes) != totals (%d, %d)", fm, probes, res.FlowMods, res.Probes)
	}
	if res.FlowMods == 0 || res.Probes == 0 {
		t.Fatal("no ops recorded")
	}
	// Cost fitting ran on round 0 for every member and filled the vec'd
	// fleet metrics.
	if res.ScoreCards != o.Switches {
		t.Fatalf("score cards = %d, want %d", res.ScoreCards, o.Switches)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["fleet.inferences"]; got != int64(res.Inferences) {
		t.Fatalf("fleet.inferences = %d, want %d", got, res.Inferences)
	}
	child := telemetry.ChildName("fleet.rounds", "switch", "sim-000")
	if got := snap.Counters[child]; got != int64(o.Rounds) {
		t.Fatalf("%s = %d, want %d", child, got, o.Rounds)
	}
	if h, ok := snap.Histograms["fleet.probe_rtt_ns"]; !ok || h.Count != int64(res.RTTSamples) {
		t.Fatalf("fleet.probe_rtt_ns: present=%v %+v, want count %d", ok, h, res.RTTSamples)
	}
}

// TestFleetInflightGate bounds concurrency without changing results: a
// MaxInflight of 1 under many workers must still match the unbounded run.
func TestFleetInflightGate(t *testing.T) {
	o := testOptions(5)
	o.Workers = 6
	base, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	o = testOptions(5)
	o.Workers = 6
	o.MaxInflight = 1
	gated, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Deterministic(), gated.Deterministic()) {
		t.Fatal("MaxInflight changed deterministic results")
	}
}

// TestFleetServiceStartStop runs the continuous service for a few rounds
// and stops it: the fold must reflect the completed rounds, carry rates,
// and Stop must be idempotent.
func TestFleetServiceStartStop(t *testing.T) {
	o := testOptions(23)
	o.Switches = 4
	s, err := Start(o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Members() != 4 {
		t.Fatalf("members = %d, want 4", s.Members())
	}
	deadline := time.Now().Add(30 * time.Second)
	for s.Rounds() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("service made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	res := s.Stop()
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d, want >= 2", res.Rounds)
	}
	if res.InferErrs != 0 {
		t.Fatalf("inference errors: %d", res.InferErrs)
	}
	if res.Inferences < 4*2 {
		t.Fatalf("inferences = %d, want >= 8", res.Inferences)
	}
	if res.Wall <= 0 || res.SwitchesPerSec <= 0 || res.FlowModsPerSec <= 0 {
		t.Fatalf("rates missing: wall=%v sw/s=%v fm/s=%v", res.Wall, res.SwitchesPerSec, res.FlowModsPerSec)
	}
	if again := s.Stop(); again != res {
		t.Fatal("second Stop returned a different result")
	}
	// The live progress gauges track the loop while it runs; after Stop
	// they hold the final round's cumulative values.
	snap := o.Registry.Snapshot()
	if got := snap.Gauges["fleet.rounds_completed"]; got != int64(res.Rounds) {
		t.Fatalf("fleet.rounds_completed = %d, want %d", got, res.Rounds)
	}
	if got := snap.Gauges["fleet.inferences_live"]; got != int64(res.Inferences) {
		t.Fatalf("fleet.inferences_live = %d, want %d", got, res.Inferences)
	}
	// The service's score DB holds every member's card (CostEvery=2 hits
	// round 0).
	for _, sum := range res.PerSwitch {
		if _, ok := s.Scores().Score(sum.Name); !ok {
			t.Fatalf("no score card for %s", sum.Name)
		}
	}
}
