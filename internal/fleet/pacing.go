package fleet

import "time"

// tokenBucket is a member's probe budget: rate tokens/sec refill up to
// burst, a round is admitted only while the bucket is solvent, and its
// actual probe spend is charged afterwards — possibly driving the balance
// negative, which the next admit waits out. Charging actuals (instead of
// predicting a round's cost) keeps admission honest for rounds whose probe
// count is data-dependent, at the cost of at most one burst of overdraft.
//
// A bucket belongs to exactly one member and is only touched by the worker
// running that member's round, so it needs no lock. A nil bucket (rate 0)
// is the unlimited budget: both methods are nil-safe no-ops, which also
// keeps deterministic runs free of wall-clock reads.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
	sleep  func(time.Duration)
}

// newTokenBucket returns a bucket starting full, or nil (unlimited) when
// rate <= 0. now/sleep default to real time; tests inject fakes.
func newTokenBucket(rate, burst float64, now func() time.Time, sleep func(time.Duration)) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = rate
	}
	if now == nil {
		now = time.Now
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	b := &tokenBucket{rate: rate, burst: burst, tokens: burst, now: now, sleep: sleep}
	b.last = now()
	return b
}

// refill accrues tokens for the time since the last touch, capped at burst.
func (b *tokenBucket) refill() {
	n := b.now()
	b.tokens += n.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = n
}

// admit blocks until the bucket is solvent (tokens >= 0) and returns how
// long it waited.
func (b *tokenBucket) admit() time.Duration {
	if b == nil {
		return 0
	}
	b.refill()
	if b.tokens >= 0 {
		return 0
	}
	wait := time.Duration(-b.tokens / b.rate * float64(time.Second))
	b.sleep(wait)
	b.refill()
	return wait
}

// charge debits n tokens without blocking; the balance may go negative
// (overdraft), deferring the cost to the next admit.
func (b *tokenBucket) charge(n float64) {
	if b == nil || n <= 0 {
		return
	}
	b.refill()
	b.tokens -= n
}
