package fleet

import (
	"sync"
	"time"

	"tango/internal/core/pattern"
)

// Service is the long-running form of the fleet: Start spins the round loop
// on its own goroutine and it re-infers every member continuously until
// Stop. cmd/tangofleet wraps it behind signal handling and the telemetry
// HTTP exporter.
type Service struct {
	r     *runner
	start time.Time
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once

	mu     sync.Mutex
	rounds int
	res    *Result
}

// Start builds the fleet and begins the continuous round loop.
// Options.Rounds is ignored — the service runs until Stop.
func Start(o Options) (*Service, error) {
	r, err := newRunner(o)
	if err != nil {
		return nil, err
	}
	s := &Service{r: r, start: time.Now(), stop: make(chan struct{}), done: make(chan struct{})}
	go s.loop()
	return s, nil
}

func (s *Service) loop() {
	defer close(s.done)
	// Live progress gauges for the HTTP exporter while the service runs;
	// counters and histograms are published once, by the Stop-time fold
	// (Counter.Add accumulates, so folding repeatedly would double-count).
	roundsG := s.r.o.Registry.Gauge("fleet.rounds_completed")
	infersG := s.r.o.Registry.Gauge("fleet.inferences_live")
	errsG := s.r.o.Registry.Gauge("fleet.infer_errs_live")
	s.r.o.Registry.Gauge("fleet.switches").Set(int64(len(s.r.members)))
	for n := 0; ; n++ {
		select {
		case <-s.stop:
			return
		default:
		}
		s.r.round(n)
		var infers, errs int
		for _, m := range s.r.members {
			infers += m.infers
			errs += m.errs
		}
		roundsG.Set(int64(n + 1))
		infersG.Set(int64(infers))
		errsG.Set(int64(errs))
		s.mu.Lock()
		s.rounds = n + 1
		s.mu.Unlock()
	}
}

// Rounds reports how many complete rounds the loop has finished.
func (s *Service) Rounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

// Members reports the fleet size (simulated + TCP).
func (s *Service) Members() int { return len(s.r.members) }

// Scores returns the live score database the service's cost fitting fills.
// pattern.DB is safe for concurrent readers.
func (s *Service) Scores() *pattern.DB { return s.r.scores() }

// Stop ends the round loop after the in-progress round's barrier, folds the
// fleet, and returns the result. Idempotent: later calls return the same
// result.
func (s *Service) Stop() *Result {
	s.once.Do(func() {
		close(s.stop)
		<-s.done
		wall := time.Since(s.start)
		s.mu.Lock()
		s.res = s.r.fold()
		s.res.finishRates(wall)
		s.mu.Unlock()
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res
}
