package faults

import (
	"errors"
	"testing"
	"time"

	"tango/internal/core/probe"
	"tango/internal/switchsim"
)

// testSwitch builds a small policy-cache switch and its wrapped device.
func testSwitch(t *testing.T, cfg Config) (*switchsim.Switch, probe.Device) {
	t.Helper()
	sw := switchsim.New(switchsim.TestSwitch(8, switchsim.PolicyFIFO), switchsim.WithSeed(1))
	return sw, WrapDevice(probe.SimDevice{S: sw}, NewInjector(cfg))
}

func TestWrapDeviceNilInjectorIsPassThrough(t *testing.T) {
	sw := switchsim.New(switchsim.TestSwitch(8, switchsim.PolicyFIFO))
	inner := probe.SimDevice{S: sw}
	if dev := WrapDevice(inner, nil); dev != probe.Device(inner) {
		t.Fatal("nil injector must return the device unchanged")
	}
}

func TestDropReturnsTypedTimeout(t *testing.T) {
	sw, dev := testSwitch(t, Config{Seed: 2, Drop: 1.0, DropTimeout: time.Millisecond})
	e := probe.NewEngine(dev)
	before := sw.Now()
	err := e.Install(1, 100)
	if err == nil {
		t.Fatal("dropped flow-mod reported success")
	}
	fe, ok := IsFault(err)
	if !ok || fe.Kind != KindDrop {
		t.Fatalf("got %v, want injected drop", err)
	}
	if !probe.Transient(err) {
		t.Fatal("drop must be retryable")
	}
	// The drop timeout is charged against the virtual clock.
	if sw.Now().Sub(before) < time.Millisecond {
		t.Fatalf("clock advanced %v, want ≥ DropTimeout", sw.Now().Sub(before))
	}
}

func TestDropAckLossStillApplies(t *testing.T) {
	// With drop=1 roughly half the draws are ack losses; after enough
	// installs of distinct flows, some rules must be resident even though
	// every call returned an error.
	sw, dev := testSwitch(t, Config{Seed: 3, Drop: 1.0})
	e := probe.NewEngine(dev)
	for i := uint32(0); i < 16; i++ {
		if err := e.Install(i, 100); err == nil {
			t.Fatal("drop rate 1.0 produced a success")
		}
	}
	tcam, _, software := sw.RuleCount()
	if tcam+software == 0 {
		t.Fatal("no ack-loss drop applied its operation")
	}
	if tcam+software == 16 {
		t.Fatal("no request-loss drop discarded its operation")
	}
}

func TestOverflowWrapsTableFull(t *testing.T) {
	_, dev := testSwitch(t, Config{Seed: 4, Overflow: 1.0})
	e := probe.NewEngine(dev)
	err := e.Install(1, 100)
	if !errors.Is(err, switchsim.ErrTableFull) {
		t.Fatalf("overflow error %v does not wrap ErrTableFull", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("overflow error lost the injected marker")
	}
	if !probe.Transient(err) {
		t.Fatal("injected overflow must be transient")
	}
}

func TestResetClearsSwitchAndIsNotTransient(t *testing.T) {
	sw, _ := testSwitch(t, Config{})
	healthy := probe.NewEngine(probe.SimDevice{S: sw})
	for i := uint32(0); i < 4; i++ {
		if err := healthy.Install(i, 100); err != nil {
			t.Fatal(err)
		}
	}
	dev := WrapDevice(probe.SimDevice{S: sw}, NewInjector(Config{Seed: 5, Reset: 1.0}))
	err := probe.NewEngine(dev).Install(9, 100)
	fe, ok := IsFault(err)
	if !ok || fe.Kind != KindReset {
		t.Fatalf("got %v, want injected reset", err)
	}
	if probe.Transient(err) {
		t.Fatal("reset must not be transient")
	}
	tcam, _, software := sw.RuleCount()
	if tcam+software != 0 {
		t.Fatalf("switch kept %d rules across a reset", tcam+software)
	}
	if got := sw.Stats().Resets; got != 1 {
		t.Fatalf("Stats.Resets = %d, want 1", got)
	}
}

func TestDuplicateAddDoesNotLeakSlots(t *testing.T) {
	sw, dev := testSwitch(t, Config{Seed: 6, Duplicate: 1.0})
	e := probe.NewEngine(dev)
	const n = 12
	for i := uint32(0); i < n; i++ {
		if err := e.Install(i, 100); err != nil {
			t.Fatalf("duplicated add %d failed: %v", i, err)
		}
	}
	tcam, _, software := sw.RuleCount()
	if tcam+software != n {
		t.Fatalf("%d rules resident after %d duplicated adds", tcam+software, n)
	}
}

func TestReorderDelaysFlowModsOneSlot(t *testing.T) {
	// With reorder=1 every flow-mod is held and applied during the next
	// operation, so the switch always trails the controller by one op.
	sw, dev := testSwitch(t, Config{Seed: 7, Reorder: 1.0})
	e := probe.NewEngine(dev)
	const n = 5
	for i := uint32(0); i < n; i++ {
		if err := e.Install(i, 100); err != nil {
			t.Fatalf("held add %d returned %v, want optimistic ack", i, err)
		}
		if got := sw.Stats().FlowMods; got != uint64(i) {
			t.Fatalf("FlowMods = %d after %d installs, want %d (one-slot lag)", got, i+1, i)
		}
	}
	// Any subsequent operation — here a probe — flushes the trailing op.
	if _, _, err := e.Probe(0); err != nil {
		t.Fatal(err)
	}
	if got := sw.Stats().FlowMods; got != n {
		t.Fatalf("FlowMods = %d after probe flush, want %d", got, n)
	}
}

func TestDelayChargesClock(t *testing.T) {
	sw, dev := testSwitch(t, Config{Seed: 8, Delay: 1.0, DelayMean: 5 * time.Millisecond, DelayStdDev: time.Microsecond})
	e := probe.NewEngine(dev)
	before := sw.Now()
	if err := e.Install(1, 100); err != nil {
		t.Fatal(err)
	}
	if d := sw.Now().Sub(before); d < 4*time.Millisecond {
		t.Fatalf("clock advanced %v, want ≥ ~5ms delay", d)
	}
}

func TestProbeFaults(t *testing.T) {
	sw, dev := testSwitch(t, Config{Seed: 9, Drop: 0.5, Delay: 0.5})
	healthy := probe.NewEngine(probe.SimDevice{S: sw})
	if err := healthy.Install(1, 100); err != nil {
		t.Fatal(err)
	}
	e := probe.NewEngine(dev)
	var drops, oks int
	for i := 0; i < 40; i++ {
		_, _, err := e.Probe(1)
		switch {
		case err == nil:
			oks++
		case errors.Is(err, ErrInjected):
			drops++
		default:
			t.Fatalf("probe %d: unexpected error %v", i, err)
		}
	}
	if drops == 0 || oks == 0 {
		t.Fatalf("drops=%d oks=%d, want a mix at 50/50 rates", drops, oks)
	}
}

// TestEngineRetryRecoversFromDrops is the integration check for the
// hardening: a lossy channel plus the engine's retry policy still executes
// every operation successfully.
func TestEngineRetryRecoversFromDrops(t *testing.T) {
	sw, dev := testSwitch(t, Config{Seed: 10, Drop: 0.3})
	e := probe.NewEngine(dev)
	e.Retry = probe.DefaultRetry
	for i := uint32(0); i < 32; i++ {
		if err := e.Install(i, 100); err != nil {
			t.Fatalf("install %d failed despite retry: %v", i, err)
		}
		if _, _, err := e.Probe(i); err != nil {
			t.Fatalf("probe %d failed despite retry: %v", i, err)
		}
	}
	// Ack-loss retries scrub before re-adding, so no duplicate slots: the
	// switch must hold exactly 8 TCAM + 24 software rules.
	tcam, _, software := sw.RuleCount()
	if tcam+software != 32 {
		t.Fatalf("%d rules resident, want 32 (scrubbed re-adds)", tcam+software)
	}
}
