package faults

import (
	"sync"
	"time"

	"tango/internal/core/probe"
	"tango/internal/openflow"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

// Resetter is the optional capability a wrapped device (or its underlying
// switch) must expose for KindReset faults to fire; without it reset draws
// are downgraded to no-ops.
type Resetter interface {
	Reset()
}

// Sleeper is the optional capability used to charge fault latencies (delay
// draws, drop timeouts, retry backoff) against the device's clock. Virtual-
// clock devices advance simulated time; wall-clock devices block.
type Sleeper interface {
	Sleep(d time.Duration)
}

// Device wraps a probe-engine device and perturbs its control channel with
// injected faults. It satisfies probe.Device (and probe.TrafficSender, with
// a loop fallback when the inner device lacks batching), so a faulty switch
// is a drop-in replacement anywhere a healthy one is accepted.
type Device struct {
	dev probe.Device
	inj *Injector

	mu sync.Mutex
	// held is a flow-mod deferred by a reorder fault; it applies after the
	// next operation, swapping the two on the wire.
	held *openflow.FlowMod

	lateErrs *telemetry.Counter
}

var _ probe.Device = (*Device)(nil)
var _ probe.TrafficSender = (*Device)(nil)

// WrapDevice wraps dev with fault injection. A nil injector returns dev
// unchanged, so a disabled fault configuration costs nothing.
func WrapDevice(dev probe.Device, inj *Injector) probe.Device {
	if inj == nil {
		return dev
	}
	return &Device{
		dev:      dev,
		inj:      inj,
		lateErrs: telemetry.Default().Counter("faults.late_errors"),
	}
}

// Now implements probe.Device.
func (d *Device) Now() time.Time { return d.dev.Now() }

// Sleep implements Sleeper by delegating when the inner device can sleep.
func (d *Device) Sleep(dur time.Duration) {
	if s, ok := d.dev.(Sleeper); ok {
		s.Sleep(dur)
	}
}

// reset clears the underlying switch state when the device supports it,
// reporting whether it did.
func (d *Device) reset() bool {
	if r, ok := d.dev.(Resetter); ok {
		r.Reset()
		return true
	}
	return false
}

// takeHeld pops the reorder-deferred flow-mod, if any. Each operation pops
// at entry and flushes at exit (via flushHeld), so a held op applies after
// the operation that overtook it — never at the end of its own call.
func (d *Device) takeHeld() *openflow.FlowMod {
	d.mu.Lock()
	fm := d.held
	d.held = nil
	d.mu.Unlock()
	return fm
}

// flushHeld applies a reorder-deferred flow-mod after the operation that
// overtook it. Its ack was already (optimistically) returned, so a late
// failure is invisible to the caller — it is only counted.
func (d *Device) flushHeld(fm *openflow.FlowMod) {
	if fm == nil {
		return
	}
	if err := d.dev.FlowMod(fm); err != nil {
		d.lateErrs.Add(1)
	}
}

// FlowMod implements probe.Device with fault injection.
func (d *Device) FlowMod(fm *openflow.FlowMod) error {
	defer d.flushHeld(d.takeHeld())
	dec := d.inj.Decide()
	if !dec.Fire {
		return d.dev.FlowMod(fm)
	}
	switch dec.Kind {
	case KindDrop:
		if dec.AckLoss {
			// The switch applied the op; only the confirmation vanished.
			if err := d.dev.FlowMod(fm); err != nil {
				d.lateErrs.Add(1)
			}
		}
		d.Sleep(d.inj.DropTimeout())
		return &Error{Kind: KindDrop, Op: "flowmod"}
	case KindDelay:
		d.Sleep(dec.Delay)
		return d.dev.FlowMod(fm)
	case KindDuplicate:
		if err := d.dev.FlowMod(fm); err != nil {
			return err
		}
		// The duplicate copy: adds are replaced in place by OpenFlow 1.0
		// semantics, so only idempotent operations re-execute; either way
		// the caller sees the single original ack.
		if fm.Command != openflow.FlowAdd {
			if err := d.dev.FlowMod(fm); err != nil {
				d.lateErrs.Add(1)
			}
		}
		return nil
	case KindReorder:
		d.mu.Lock()
		free := d.held == nil
		if free {
			d.held = fm
		}
		d.mu.Unlock()
		if free {
			return nil // optimistic ack; applies after the next op
		}
		return d.dev.FlowMod(fm)
	case KindReset:
		if d.reset() {
			return &Error{Kind: KindReset, Op: "flowmod"}
		}
		return d.dev.FlowMod(fm)
	case KindOverflow:
		return &Error{Kind: KindOverflow, Op: "flowmod", Wrapped: switchsim.ErrTableFull}
	}
	return d.dev.FlowMod(fm)
}

// SendProbe implements probe.Device with fault injection.
func (d *Device) SendProbe(data []byte, inPort uint16) (time.Duration, bool, error) {
	defer d.flushHeld(d.takeHeld())
	dec := d.inj.Decide()
	if !dec.Fire {
		return d.dev.SendProbe(data, inPort)
	}
	switch dec.Kind {
	case KindDrop:
		if dec.AckLoss {
			// The frame traversed the switch (touching counters and cache
			// state); only the reflected copy was lost.
			if _, _, err := d.dev.SendProbe(data, inPort); err != nil {
				d.lateErrs.Add(1)
			}
		}
		d.Sleep(d.inj.DropTimeout())
		return 0, false, &Error{Kind: KindDrop, Op: "probe"}
	case KindDelay:
		rtt, punted, err := d.dev.SendProbe(data, inPort)
		if err != nil {
			return rtt, punted, err
		}
		d.Sleep(dec.Delay)
		return rtt + dec.Delay, punted, nil
	case KindDuplicate:
		if _, _, err := d.dev.SendProbe(data, inPort); err != nil {
			return 0, false, err
		}
		return d.dev.SendProbe(data, inPort)
	case KindReset:
		if d.reset() {
			return 0, false, &Error{Kind: KindReset, Op: "probe"}
		}
	}
	// Reorder and overflow have no data-plane analogue for a single
	// synchronous probe: deliver it untouched.
	return d.dev.SendProbe(data, inPort)
}

// SendTraffic implements probe.TrafficSender. The whole burst is one
// control-channel message, so it draws one fault decision; without batching
// support underneath, the burst degrades to a probe loop.
func (d *Device) SendTraffic(data []byte, inPort uint16, count int) error {
	defer d.flushHeld(d.takeHeld())
	send := func(n int) error {
		if ts, ok := d.dev.(probe.TrafficSender); ok {
			return ts.SendTraffic(data, inPort, n)
		}
		for i := 0; i < n; i++ {
			if _, _, err := d.dev.SendProbe(data, inPort); err != nil {
				return err
			}
		}
		return nil
	}
	dec := d.inj.Decide()
	if !dec.Fire {
		return send(count)
	}
	switch dec.Kind {
	case KindDrop:
		if dec.AckLoss {
			if err := send(count); err != nil {
				d.lateErrs.Add(1)
			}
		}
		d.Sleep(d.inj.DropTimeout())
		return &Error{Kind: KindDrop, Op: "traffic"}
	case KindDelay:
		d.Sleep(dec.Delay)
		return send(count)
	case KindDuplicate:
		return send(count + 1)
	case KindReset:
		if d.reset() {
			return &Error{Kind: KindReset, Op: "traffic"}
		}
	}
	return send(count)
}
