// Package faults provides deterministic, seeded fault injection for
// Tango's control channel. The paper's premise is that switch properties
// are inferred from measurements taken over a real, imperfect OpenFlow
// channel; this package supplies the imperfection on demand so that the
// probing and inference engines can be hardened — and regression-gated —
// against message loss, delay, duplication, reordering, spurious
// table-overflow errors, and mid-probe switch resets.
//
// Every fault decision is drawn from a single seeded RNG consumed in
// operation order, so a run with a given seed replays exactly: the
// conformance harness (internal/conformance) relies on this to assert that
// an entire probe→infer pipeline is bit-for-bit reproducible under faults.
// Injected faults are observable through telemetry as per-kind counters
// (faults.injected.<kind>).
//
// Two injection points cover the repo's two transports:
//
//   - Device (this package) wraps any probe-engine device — the in-process
//     emulator adapter or the TCP controller — and perturbs FlowMod /
//     SendProbe / SendTraffic calls.
//   - ofconn.ServeOptions.Faults hands an *Injector to the TCP agent loop,
//     which drops, delays, duplicates, and reorders reply messages on the
//     wire; the controller side surfaces the resulting silence as typed
//     timeout errors (ofconn.ErrTimeout).
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"tango/internal/telemetry"
)

// Kind identifies one fault class.
type Kind int

// Fault kinds. The order is the precedence order used when one RNG draw is
// partitioned across the configured rates.
const (
	// KindDrop loses a control message: the operation is not applied (or
	// its acknowledgement is lost after it was applied — both directions
	// occur, chosen deterministically) and the caller observes a timeout.
	KindDrop Kind = iota
	// KindDelay holds a message for an extra latency draw before applying.
	KindDelay
	// KindDuplicate delivers a message twice. Idempotent operations
	// (modify, delete, probes) are applied twice; adds are absorbed by the
	// switch (OpenFlow 1.0 replaces on identical match+priority) and only
	// pay the extra channel time.
	KindDuplicate
	// KindReorder swaps a flow-mod with the operation that follows it.
	KindReorder
	// KindReset models a mid-probe switch reset: all flow tables are
	// cleared and the operation fails with a non-transient typed error.
	KindReset
	// KindOverflow injects a spurious table-full rejection: the operation
	// is not applied and the caller sees an error that wraps the real
	// table-full sentinel plus the transient fault marker.
	KindOverflow

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindDelay:
		return "delay"
	case KindDuplicate:
		return "duplicate"
	case KindReorder:
		return "reorder"
	case KindReset:
		return "reset"
	case KindOverflow:
		return "overflow"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds lists every fault kind in precedence order.
var Kinds = []Kind{KindDrop, KindDelay, KindDuplicate, KindReorder, KindReset, KindOverflow}

// Error is the typed error surfaced for an injected fault that the
// underlying operation could not absorb silently.
type Error struct {
	// Kind is the fault class that fired.
	Kind Kind
	// Op names the operation the fault hit ("flowmod", "probe", "traffic").
	Op string
	// Wrapped is an optional underlying sentinel (e.g. the switch's
	// table-full error for KindOverflow) exposed via Unwrap.
	Wrapped error
}

// Error implements error.
func (e *Error) Error() string {
	if e.Wrapped != nil {
		return fmt.Sprintf("faults: injected %s on %s: %v", e.Kind, e.Op, e.Wrapped)
	}
	return fmt.Sprintf("faults: injected %s on %s", e.Kind, e.Op)
}

// Unwrap exposes the wrapped sentinel.
func (e *Error) Unwrap() error { return e.Wrapped }

// Timeout reports whether the fault manifests as a timeout, matching the
// net.Error convention.
func (e *Error) Timeout() bool { return e.Kind == KindDrop }

// Transient reports whether a bounded retry may clear the fault. Resets are
// not transient: the switch lost all probe state and the measurement round
// cannot be salvaged by re-sending one message.
func (e *Error) Transient() bool { return e.Kind != KindReset }

// Is lets errors.Is match any injected fault against ErrInjected.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// ErrInjected is the sentinel every *Error matches via errors.Is, letting
// callers separate injected faults from organic failures.
var ErrInjected = errors.New("faults: injected fault")

// IsFault reports whether err stems from an injected fault and returns it.
func IsFault(err error) (*Error, bool) {
	var fe *Error
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// Config sets per-operation fault rates. Rates are probabilities in [0,1]
// applied per control-channel operation; their sum must not exceed 1 (one
// operation suffers at most one fault). The zero value disables injection.
type Config struct {
	// Seed fixes the decision RNG. Two injectors with equal Config produce
	// identical fault sequences.
	Seed int64

	// Per-kind rates.
	Drop      float64
	Delay     float64
	Duplicate float64
	Reorder   float64
	Reset     float64
	Overflow  float64

	// DelayMean/DelayStdDev shape the extra latency charged by KindDelay.
	// Zero means 2ms ± 0.5ms (simulated time on virtual-clock devices,
	// wall time on the TCP server loop).
	DelayMean   time.Duration
	DelayStdDev time.Duration
	// DropTimeout is the time a caller loses waiting on a dropped message
	// before its (simulated) timer fires. Zero means 25ms.
	DropTimeout time.Duration
}

// Default fault-shape parameters.
const (
	defaultDelayMean   = 2 * time.Millisecond
	defaultDelayStdDev = 500 * time.Microsecond
	defaultDropTimeout = 25 * time.Millisecond
)

// Enabled reports whether any fault rate is non-zero.
func (c Config) Enabled() bool {
	return c.Drop > 0 || c.Delay > 0 || c.Duplicate > 0 || c.Reorder > 0 ||
		c.Reset > 0 || c.Overflow > 0
}

// rate returns the configured probability for kind k.
func (c Config) rate(k Kind) float64 {
	switch k {
	case KindDrop:
		return c.Drop
	case KindDelay:
		return c.Delay
	case KindDuplicate:
		return c.Duplicate
	case KindReorder:
		return c.Reorder
	case KindReset:
		return c.Reset
	case KindOverflow:
		return c.Overflow
	}
	return 0
}

// Validate checks the rates are probabilities summing to at most 1.
func (c Config) Validate() error {
	var sum float64
	for _, k := range Kinds {
		r := c.rate(k)
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: %s rate %v outside [0,1]", k, r)
		}
		sum += r
	}
	if sum > 1 {
		return fmt.Errorf("faults: rates sum to %v > 1", sum)
	}
	return nil
}

// String renders the config in the spec syntax ParseSpec accepts.
func (c Config) String() string {
	var parts []string
	for _, k := range Kinds {
		if r := c.rate(k); r > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, r))
		}
	}
	if c.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", c.Seed))
	}
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a command-line fault specification of the form
//
//	drop=0.01,delay=0.05,duplicate=0.01,reorder=0.02,overflow=0.01,seed=7
//
// Unknown keys and malformed rates are errors. The empty string (and the
// literal "off") yields a disabled Config.
func ParseSpec(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return c, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return c, fmt.Errorf("faults: bad spec field %q (want key=value)", field)
		}
		if key == "seed" {
			seed, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return c, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			c.Seed = seed
			continue
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return c, fmt.Errorf("faults: bad rate %q for %s: %v", val, key, err)
		}
		switch key {
		case "drop":
			c.Drop = rate
		case "delay":
			c.Delay = rate
		case "duplicate", "dup":
			c.Duplicate = rate
		case "reorder":
			c.Reorder = rate
		case "reset":
			c.Reset = rate
		case "overflow":
			c.Overflow = rate
		default:
			return c, fmt.Errorf("faults: unknown fault kind %q", key)
		}
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Injector draws deterministic fault decisions. All methods are safe for
// concurrent use, but determinism across runs additionally requires that
// callers consult the injector in a deterministic order — one injector per
// probed switch, as the conformance harness does. A nil *Injector never
// injects, so integration points can consult it unconditionally.
type Injector struct {
	mu  sync.Mutex
	cfg Config
	rng *rand.Rand

	counters [numKinds]*telemetry.Counter
	total    *telemetry.Counter
}

// NewInjector builds an injector from cfg, bound to the process-default
// telemetry registry. It returns nil — inject nothing, at no cost — when
// cfg has no fault enabled, so call sites need no special casing.
func NewInjector(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.DelayMean == 0 {
		cfg.DelayMean = defaultDelayMean
		cfg.DelayStdDev = defaultDelayStdDev
	}
	if cfg.DropTimeout == 0 {
		cfg.DropTimeout = defaultDropTimeout
	}
	in := &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	in.SetTelemetry(telemetry.Default())
	return in
}

// SetTelemetry rebinds the injector's counters. Nil disables recording.
func (in *Injector) SetTelemetry(reg *telemetry.Registry) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, k := range Kinds {
		in.counters[k] = reg.Counter("faults.injected." + k.String())
	}
	in.total = reg.Counter("faults.injected.total")
}

// Config returns the injector's configuration (zero for nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Decision is the outcome of one fault draw.
type Decision struct {
	// Fire reports whether any fault fires.
	Fire bool
	// Kind is the fault class when Fire is set.
	Kind Kind
	// Delay is the extra latency for KindDelay.
	Delay time.Duration
	// AckLoss distinguishes, for KindDrop, a message lost on its way to
	// the switch (false: the operation was never applied) from an
	// acknowledgement lost on its way back (true: the operation WAS
	// applied, the caller just cannot know).
	AckLoss bool
}

// Decide draws the fault decision for the next control-channel operation.
// Exactly one uniform sample partitions the rate budget, so at most one
// kind fires per operation and the decision stream is a pure function of
// the seed and call order.
func (in *Injector) Decide() Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	u := in.rng.Float64()
	var cum float64
	for _, k := range Kinds {
		cum += in.cfg.rate(k)
		if u < cum {
			d := Decision{Fire: true, Kind: k}
			switch k {
			case KindDelay:
				d.Delay = in.delayLocked()
			case KindDrop:
				d.AckLoss = in.rng.Float64() < 0.5
			}
			in.counters[k].Add(1)
			in.total.Add(1)
			return d
		}
	}
	return Decision{}
}

// delayLocked samples the extra latency for a delay fault. Callers hold mu.
func (in *Injector) delayLocked() time.Duration {
	v := float64(in.cfg.DelayMean) + in.rng.NormFloat64()*float64(in.cfg.DelayStdDev)
	if min := float64(in.cfg.DelayMean) * 0.1; v < min {
		v = min
	}
	return time.Duration(v)
}

// DropTimeout returns the configured dropped-message timeout.
func (in *Injector) DropTimeout() time.Duration {
	if in == nil {
		return 0
	}
	return in.cfg.DropTimeout
}

// Transient reports whether err carries a transient marker — an injected
// fault (or any error exposing Transient() bool) that a bounded retry may
// clear. It is the classifier the probe engine's retry loop uses.
func Transient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
