package faults

import (
	"errors"
	"testing"
	"time"

	"tango/internal/telemetry"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want Config
	}{
		{"", Config{}},
		{"off", Config{}},
		{"drop=0.01", Config{Drop: 0.01}},
		{"drop=0.01,delay=0.05,duplicate=0.01,reorder=0.02,overflow=0.01,seed=7",
			Config{Drop: 0.01, Delay: 0.05, Duplicate: 0.01, Reorder: 0.02, Overflow: 0.01, Seed: 7}},
		{"dup=0.5,reset=0.001", Config{Duplicate: 0.5, Reset: 0.001}},
		{" drop=0.1 , seed=3 ", Config{Drop: 0.1, Seed: 3}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		// String renders a spec ParseSpec accepts back into the same config.
		rt, err := ParseSpec(got.String())
		if err != nil {
			t.Errorf("ParseSpec(String(%q)): %v", c.spec, err)
		} else if rt != got {
			t.Errorf("round trip of %q: %+v != %+v", c.spec, rt, got)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"drop",            // no value
		"drop=x",          // bad rate
		"bogus=0.1",       // unknown kind
		"seed=notanumber", // bad seed
		"drop=0.8,delay=0.8", // rates sum > 1
		"drop=-0.1",          // negative rate
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", spec)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in != nil || NewInjector(Config{}) != nil {
		t.Fatal("disabled config must yield a nil injector")
	}
	if d := in.Decide(); d.Fire {
		t.Fatal("nil injector fired")
	}
	if in.DropTimeout() != 0 || in.Config() != (Config{}) {
		t.Fatal("nil injector leaked state")
	}
	in.SetTelemetry(telemetry.NewRegistry()) // must not panic
}

func TestDecideDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.1, Delay: 0.2, Duplicate: 0.1, Reorder: 0.1, Overflow: 0.05}
	a, b := NewInjector(cfg), NewInjector(cfg)
	fired := 0
	for i := 0; i < 2000; i++ {
		da, db := a.Decide(), b.Decide()
		if da != db {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, da, db)
		}
		if da.Fire {
			fired++
		}
	}
	// 55% configured rate over 2000 draws: expect roughly 1100 firings.
	if fired < 900 || fired > 1300 {
		t.Fatalf("fired %d/2000, want ≈1100", fired)
	}
}

func TestDecideRespectsRates(t *testing.T) {
	in := NewInjector(Config{Seed: 1, Overflow: 1.0})
	for i := 0; i < 100; i++ {
		d := in.Decide()
		if !d.Fire || d.Kind != KindOverflow {
			t.Fatalf("draw %d: got %+v, want certain overflow", i, d)
		}
	}
}

func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	in := NewInjector(Config{Seed: 5, Drop: 0.5, Delay: 0.5})
	in.SetTelemetry(reg)
	const draws = 400
	for i := 0; i < draws; i++ {
		in.Decide()
	}
	snap := reg.Snapshot().Counters
	if snap["faults.injected.total"] != draws {
		t.Fatalf("total = %d, want %d (rates sum to 1)", snap["faults.injected.total"], draws)
	}
	if snap["faults.injected.drop"]+snap["faults.injected.delay"] != draws {
		t.Fatalf("drop %d + delay %d != %d", snap["faults.injected.drop"], snap["faults.injected.delay"], draws)
	}
	if snap["faults.injected.drop"] == 0 || snap["faults.injected.delay"] == 0 {
		t.Fatal("one kind never fired at rate 0.5")
	}
}

func TestErrorTyping(t *testing.T) {
	drop := &Error{Kind: KindDrop, Op: "flowmod"}
	if !drop.Timeout() || !drop.Transient() {
		t.Fatal("drop must be a transient timeout")
	}
	reset := &Error{Kind: KindReset, Op: "probe"}
	if reset.Transient() {
		t.Fatal("reset must not be transient")
	}
	if reset.Timeout() {
		t.Fatal("reset is not a timeout")
	}
	wrapped := &Error{Kind: KindOverflow, Op: "flowmod", Wrapped: errors.New("inner")}
	if !errors.Is(wrapped, ErrInjected) {
		t.Fatal("errors.Is(_, ErrInjected) = false")
	}
	if fe, ok := IsFault(wrapped); !ok || fe.Kind != KindOverflow {
		t.Fatalf("IsFault = %v, %v", fe, ok)
	}
	if !Transient(wrapped) {
		t.Fatal("Transient(overflow) = false")
	}
	if Transient(errors.New("organic")) {
		t.Fatal("Transient(organic) = true")
	}
	if Transient(nil) {
		t.Fatal("Transient(nil) = true")
	}
}

func TestDelayShape(t *testing.T) {
	in := NewInjector(Config{Seed: 9, Delay: 1.0, DelayMean: 10 * time.Millisecond, DelayStdDev: time.Millisecond})
	for i := 0; i < 200; i++ {
		d := in.Decide()
		if d.Kind != KindDelay {
			t.Fatalf("draw %d: kind %v", i, d.Kind)
		}
		if d.Delay < time.Millisecond || d.Delay > 20*time.Millisecond {
			t.Fatalf("draw %d: delay %v outside truncated-normal band", i, d.Delay)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{Drop: 0.5, Delay: 0.6}).Validate(); err == nil {
		t.Fatal("rates summing to 1.1 accepted")
	}
	if err := (Config{Drop: 1.5}).Validate(); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
	if err := (Config{Drop: 0.2, Reset: 0.001}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
