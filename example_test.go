package tango_test

import (
	"fmt"

	"tango"
	"tango/internal/core/pattern"
	"tango/internal/switchsim"
)

// ExampleInspect fingerprints an emulated FIFO-cache switch: Tango infers
// the flow-table layer sizes and the cache-replacement policy purely from
// OpenFlow commands and probe-packet round-trip times.
func ExampleInspect() {
	profile := switchsim.TestSwitch(128, tango.PolicyFIFO)
	profile.SoftwareCapacity = 384
	sw := tango.NewEmulatedSwitch(profile, switchsim.WithSeed(1))

	model, err := tango.Inspect(tango.EngineFor(sw).Device(), tango.InspectOptions{
		Name: "example-switch",
		Seed: 1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("layers: %d\n", len(model.Sizes.Levels))
	fmt.Printf("fast-layer size: %d\n", model.Sizes.Levels[0].Census)
	fmt.Printf("policy: %s\n", model.Policy.Policy)
	// Output:
	// layers: 2
	// fast-layer size: 128
	// policy: insertion(keep-low)
}

// ExampleSchedule drains a dependency DAG of switch requests with the
// measurement-driven Tango scheduler: deletes and modifies are grouped and
// additions installed in ascending priority order, which the hardware
// switch model rewards.
func ExampleSchedule() {
	// A score card as probing would fit it for a hardware switch.
	db := tango.NewDB()
	db.PutScore(&tango.ScoreCard{
		SwitchName:      "hw1",
		AddSamePriority: 400e3, // 400µs, in nanoseconds
		AddNewPriority:  900e3,
		ShiftPerEntry:   14e3,
		Mod:             6e6,
		Del:             2e6,
	})

	g := tango.NewRequestGraph()
	for i := 0; i < 4; i++ {
		g.AddNode(&tango.Request{
			Switch: "hw1", Op: pattern.OpAdd,
			FlowID:      uint32(i),
			Priority:    uint16(400 - i*100), // arrives in descending order
			HasPriority: true,
		})
	}
	engines := map[string]*tango.Engine{
		"hw1": tango.EngineFor(tango.NewEmulatedSwitch(tango.ProfileSwitch1())),
	}
	if _, err := tango.Schedule(g, tango.TangoScheduler(db), engines); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("schedule complete")
	// Output:
	// schedule complete
}
