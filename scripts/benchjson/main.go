// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON snapshot: ns/op plus every custom metric, averaged
// across -count repetitions. scripts/bench.sh pipes the headline benchmarks
// through it to produce the per-PR BENCH_<n>.json perf trajectory.
//
//	go test -run '^$' -bench 'Table1|SizeInference' -count 3 . | go run ./scripts/benchjson
//
// With -baseline FILE, the benchmarks of a previous snapshot are embedded
// under "baseline", so one file carries a PR's before/after comparison.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's averaged measurements.
type Benchmark struct {
	Name    string             `json:"name"`
	Count   int                `json:"count"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the file layout of BENCH_<n>.json.
type Snapshot struct {
	Pkg        string      `json:"pkg,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Baseline   []Benchmark `json:"baseline,omitempty"`
}

// benchLine matches e.g. "BenchmarkTable1-8  3  44002665 ns/op  2.000 worst-err-%".
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.eE+]+) ns/op(.*)$`)

func main() {
	baselinePath := flag.String("baseline", "", "previous snapshot to embed under \"baseline\"")
	flag.Parse()

	var snap Snapshot
	order := []string{}
	sums := map[string]*Benchmark{}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			snap.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		b := sums[m[1]]
		if b == nil {
			b = &Benchmark{Name: m[1], Metrics: map[string]float64{}}
			sums[m[1]] = b
			order = append(order, m[1])
		}
		b.Count++
		b.NsPerOp += ns
		// The tail holds "value unit" metric pairs, tab separated.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
				b.Metrics[fields[i+1]] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	for _, name := range order {
		b := sums[name]
		b.NsPerOp /= float64(b.Count)
		for k := range b.Metrics {
			b.Metrics[k] /= float64(b.Count)
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		snap.Benchmarks = append(snap.Benchmarks, *b)
	}

	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -baseline: %v\n", err)
			os.Exit(1)
		}
		var prev Snapshot
		if err := json.Unmarshal(data, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -baseline %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
		snap.Baseline = prev.Benchmarks
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
