#!/usr/bin/env sh
# bench.sh runs the headline benchmarks and writes a machine-readable
# snapshot (ns/op plus each benchmark's custom metrics) so every PR leaves a
# point on the perf trajectory.
#
#   scripts/bench.sh                           # writes BENCH_10.json
#   OUT=BENCH_11.json BASELINE=BENCH_10.json scripts/bench.sh  # next PR
#   BENCH='Table1' COUNT=5 scripts/bench.sh    # subset / more repeats
#   BASELINE=old.json scripts/bench.sh         # embed old.json as "baseline"
set -eu
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_10.json}
BASELINE=${BASELINE:-BENCH_9.json}
BENCH=${BENCH:-'Table1|SizeInference|PolicyInference|Figure3b|Figure3c|SchedRun|TangoOrder|TelemetryVecRecord|Adversarial|ClassifyExact|DemoteChurn|ScaleHarness|VirtualNowParallel|FleetSustained'}
COUNT=${COUNT:-3}

# The switchsim and simclock micro-benchmarks (exact-match lookup, LRU
# demote churn, padded-vs-unpadded virtual clock reads) ride along with the
# top-level experiment benchmarks; benchjson accepts the concatenated
# streams.
go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . ./internal/switchsim ./internal/simclock |
	go run ./scripts/benchjson ${BASELINE:+-baseline "$BASELINE"} >"$OUT"
echo "wrote $OUT"
