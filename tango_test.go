package tango

import (
	"strings"
	"testing"

	"tango/internal/core/pattern"
	"tango/internal/switchsim"
)

func TestInspectPolicyCacheSwitch(t *testing.T) {
	p := switchsim.TestSwitch(200, PolicyLRU)
	p.SoftwareCapacity = 600
	sw := NewEmulatedSwitch(p, switchsim.WithSeed(5))
	m, err := Inspect(EngineFor(sw).Device(), InspectOptions{Name: "dev"})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sizes.Levels) != 2 {
		t.Fatalf("levels = %v", m.Sizes)
	}
	if e := relErr(m.Sizes.Levels[0].Size, 200); e > 0.05 {
		t.Fatalf("size estimate %d (err %.1f%%)", m.Sizes.Levels[0].Size, e*100)
	}
	if m.Microflow {
		t.Fatal("policy-cache switch misdetected as microflow")
	}
	if m.Policy == nil || !m.Policy.Policy.Equal(PolicyLRU) {
		t.Fatalf("policy = %+v, want LRU", m.Policy)
	}
	if m.Costs == nil || m.Costs.Mod <= 0 {
		t.Fatalf("costs = %+v", m.Costs)
	}
	if len(m.Costs.PathLatency) != 2 {
		t.Fatalf("path latencies = %v", m.Costs.PathLatency)
	}
	if s := m.String(); !strings.Contains(s, "policy=") {
		t.Fatalf("model string: %s", s)
	}
}

func TestInspectOVS(t *testing.T) {
	sw := NewEmulatedSwitch(ProfileOVS())
	m, err := Inspect(EngineFor(sw).Device(), InspectOptions{Name: "ovs", MaxRules: 512})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Microflow {
		t.Fatal("OVS not detected as microflow")
	}
	if m.Policy != nil {
		t.Fatal("policy probe should be skipped for microflow switches")
	}
	if !strings.Contains(m.String(), "microflow") {
		t.Fatalf("model string: %s", m.String())
	}
}

func TestInspectTCAMOnly(t *testing.T) {
	sw := NewEmulatedSwitch(ProfileSwitch2().WithTCAMCapacity(700), switchsim.WithSeed(2))
	m, err := Inspect(EngineFor(sw).Device(), InspectOptions{Name: "s2"})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Sizes.CacheFull {
		t.Fatal("TCAM-only switch should reject during doubling")
	}
	if m.Sizes.Levels[0].Size != 700 {
		t.Fatalf("size = %d, want 700", m.Sizes.Levels[0].Size)
	}
}

func TestScheduleFacade(t *testing.T) {
	g := NewRequestGraph()
	for i := 0; i < 20; i++ {
		g.AddNode(&Request{
			Switch: "sw", Op: pattern.OpAdd,
			FlowID: uint32(i), Priority: uint16(2000 - i), HasPriority: true,
		})
	}
	db := NewDB()
	db.PutScore(&ScoreCard{
		SwitchName:      "sw",
		AddSamePriority: 1, AddNewPriority: 2, ShiftPerEntry: 1, Mod: 1, Del: 1,
	})
	engines := map[string]*Engine{"sw": EngineFor(NewEmulatedSwitch(ProfileSwitch1()))}
	dTango, err := Schedule(g, TangoScheduler(db), engines)
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewRequestGraph()
	for i := 0; i < 20; i++ {
		g2.AddNode(&Request{
			Switch: "sw", Op: pattern.OpAdd,
			FlowID: uint32(100 + i), Priority: uint16(2000 - i), HasPriority: true,
		})
	}
	engines2 := map[string]*Engine{"sw": EngineFor(NewEmulatedSwitch(ProfileSwitch1()))}
	dDio, err := Schedule(g2, DionysusScheduler(), engines2)
	if err != nil {
		t.Fatal(err)
	}
	if dTango > dDio {
		t.Fatalf("tango %v slower than dionysus %v on descending adds", dTango, dDio)
	}
}

func TestEnforcePrioritiesFacade(t *testing.T) {
	g := NewRequestGraph()
	a := g.AddNode(&Request{Switch: "s", Op: pattern.OpAdd, FlowID: 1})
	b := g.AddNode(&Request{Switch: "s", Op: pattern.OpAdd, FlowID: 2})
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	EnforcePriorities(g, 50)
	if g.Payload(a).Priority != 50 || g.Payload(b).Priority != 51 {
		t.Fatalf("priorities: %d, %d", g.Payload(a).Priority, g.Payload(b).Priority)
	}
}

func relErr(est, actual int) float64 {
	d := est - actual
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(actual)
}
