package tango

// bench_test.go holds one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment on emulated
// switches (virtual time, so wall time measures the framework, not the
// simulated network) and reports the headline quantity of that experiment
// as a custom metric, so `go test -bench` doubles as the reproduction run:
//
//	go test -bench=. -benchmem
//
// cmd/tangobench prints the full rows/series; EXPERIMENTS.md records the
// paper-vs-measured comparison.

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"tango/internal/conformance"
	"tango/internal/core/sched"
	"tango/internal/experiments"
	"tango/internal/fleet"
	"tango/internal/ofconn"
	"tango/internal/scale"
	"tango/internal/telemetry"
)

// cell parses "1.234s" or "12.3%" table cells into a float.
func cell(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "s"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1()
		if len(t.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs := experiments.Figure2()
		if len(figs) != 3 {
			b.Fatal("bad figures")
		}
	}
}

func BenchmarkFigure3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Figure3a(3)
		if len(t.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure3b(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		fig := experiments.Figure3b([]int{500, 2000, 5000})
		var add, mod float64
		for _, s := range fig.Series {
			if s.Name == "add flow (Switch#1)" {
				add = s.Y[len(s.Y)-1]
			}
			if s.Name == "mod flow (Switch#1)" {
				mod = s.Y[len(s.Y)-1]
			}
		}
		ratio = add / mod
	}
	b.ReportMetric(ratio, "add/mod@5000")
}

func BenchmarkFigure3c(b *testing.B) {
	var boost float64
	for i := 0; i < b.N; i++ {
		fig := experiments.Figure3c([]int{2000})
		var same, desc float64
		for _, s := range fig.Series {
			switch s.Name {
			case "same priority (Switch#1)":
				same = s.Y[0]
			case "descending priority (Switch#1)":
				desc = s.Y[0]
			}
		}
		boost = desc / same
	}
	b.ReportMetric(boost, "desc/same@2000")
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiments.Figure5()
		if len(fig.Series[0].Y) != 2500 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiments.Figure6()
		if len(fig.Series) != 4 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkSizeInference(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		t := experiments.SizeAccuracy()
		worst = 0
		for _, row := range t.Rows {
			if v := cell(b, row[4]); v > worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "worst-err-%")
}

func BenchmarkPolicyInference(b *testing.B) {
	var correct float64
	for i := 0; i < b.N; i++ {
		t := experiments.PolicyAccuracy()
		correct = 0
		for _, row := range t.Rows[:4] {
			if row[2] == "yes" {
				correct++
			}
		}
	}
	b.ReportMetric(correct, "correct-of-4")
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table2()
		if len(t.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs := experiments.Figure8(3)
		if len(figs) != 3 {
			b.Fatal("bad figures")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	var win float64
	for i := 0; i < b.N; i++ {
		figs := experiments.Figure9(3)
		// Headline: Topo Asc vs Topo Rand improvement on file 1.
		var opt, rnd float64
		for _, s := range figs[0].Series {
			var sum float64
			for _, y := range s.Y {
				sum += y
			}
			mean := sum / float64(len(s.Y))
			switch s.Name {
			case "Topo Asc":
				opt = mean
			case "Topo Rand":
				rnd = mean
			}
		}
		win = 100 * (1 - opt/rnd)
	}
	b.ReportMetric(win, "improv-%")
}

func BenchmarkFigure10(b *testing.B) {
	var lfImprove float64
	for i := 0; i < b.N; i++ {
		t := experiments.Figure10()
		lfImprove = cell(b, t.Rows[0][4])
	}
	b.ReportMetric(lfImprove, "LF-improv-%")
}

func BenchmarkFigure11(b *testing.B) {
	var enfWin float64
	for i := 0; i < b.N; i++ {
		t := experiments.Figure11()
		dio := cell(b, t.Rows[0][1])
		enf := cell(b, t.Rows[0][3])
		enfWin = 100 * (1 - enf/dio)
	}
	b.ReportMetric(enfWin, "addonly-enforce-improv-%")
}

// BenchmarkAdversarial runs the adversarial/churn scenario catalog
// (conformance/scenarios.go) end to end and reports its gate metrics: every
// pinned verdict must hold (gate-fails == 0), the overflow detector must
// fire on the attack trace (attack-alarms >= 1) and stay silent on the
// clean Zipf replay (clean-alarms == 0), and the worst size estimate across
// the adversarial scenarios regress-gates throughput-with-interference.
func BenchmarkAdversarial(b *testing.B) {
	var fails, attackAlarms, cleanAlarms, worstErr float64
	for i := 0; i < b.N; i++ {
		fails, attackAlarms, cleanAlarms, worstErr = 0, 0, 0, 0
		for _, r := range conformance.RunScenarios() {
			if !r.Pass {
				fails++
			}
			switch r.Scenario.Name {
			case "overflow-attack-timing":
				attackAlarms = float64(r.Alarms)
			case "overflow-clean-zipf":
				cleanAlarms = float64(r.Alarms)
			}
			if r.SizeError > worstErr {
				worstErr = r.SizeError
			}
		}
	}
	b.ReportMetric(fails, "gate-fails")
	b.ReportMetric(attackAlarms, "attack-alarms")
	b.ReportMetric(cleanAlarms, "clean-alarms")
	b.ReportMetric(100*worstErr, "worst-adv-err-%")
}

// schedWorkloadDims sizes BenchmarkSchedRun: a deep DAG (the Figure 11
// shape) over a large fleet, so the benchmark exercises the per-round
// frontier maintenance, the pattern oracle, and the executor together.
const (
	schedBenchSwitches = 32
	schedBenchTotal    = 6400
	schedBenchLevels   = 40
	schedBenchSeed     = 11
)

func BenchmarkSchedRun(b *testing.B) {
	_, db := experiments.SchedWorkload(schedBenchSwitches, schedBenchTotal, schedBenchLevels, schedBenchSeed)
	tg := &sched.Tango{DB: db, SortPriorities: true}
	ex := sched.CardExecutor{DB: db}

	// The Dionysus/Tango makespan ratio is the paper-metric regression gate
	// (Figure 10's headline): measured once, outside the timed loop.
	gD, _ := experiments.SchedWorkload(schedBenchSwitches, schedBenchTotal, schedBenchLevels, schedBenchSeed)
	dio, err := sched.Run(gD, sched.Dionysus{}, ex, sched.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var makespan float64
	for i := 0; i < b.N; i++ {
		g, _ := experiments.SchedWorkload(schedBenchSwitches, schedBenchTotal, schedBenchLevels, schedBenchSeed)
		res, err := sched.Run(g, tg, ex, sched.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		makespan = res.Makespan.Seconds()
	}
	b.ReportMetric(makespan, "makespan-s")
	b.ReportMetric(dio.Makespan.Seconds()/makespan, "dio/tango-ratio")
}

func BenchmarkTangoOrder(b *testing.B) {
	_, db := experiments.SchedWorkload(1, 1, 1, 1)
	tg := &sched.Tango{DB: db, SortPriorities: true}
	// One switch's worth of a big mixed round: the inner loop of every
	// scheduling figure.
	g, _ := experiments.SchedWorkload(1, 512, 1, schedBenchSeed)
	reqs := make([]*sched.Request, 0, 512)
	for _, id := range g.Nodes() {
		reqs = append(reqs, g.Payload(id))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tg.Order("bench-00", reqs, nil, nil); len(got) != len(reqs) {
			b.Fatal("order dropped requests")
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	var improve float64
	for i := 0; i < b.N; i++ {
		t := experiments.Figure12(600)
		improve = cell(b, t.Rows[1][2])
	}
	b.ReportMetric(improve, "improv-%")
}

// BenchmarkScaleHarness runs the B4-wide sharded scale harness at full
// scale: ≥1M resident flow rules across 12 goroutine-parallel sites, live
// timeout churn, TE re-allocation rounds, a link-failure storm, and size
// inference running concurrently, with epoch barriers keeping the outcome
// bit-identical to a serial run (TestScaleShardedDifferential). Headline
// metrics: resident flows, discrete events per wall second, and the p99
// emulated probe RTT.
func BenchmarkScaleHarness(b *testing.B) {
	var res *scale.Result
	for i := 0; i < b.N; i++ {
		r, err := scale.Run(scale.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if r.FlowsResident < 1<<20 {
			b.Fatalf("FlowsResident = %d, want >= %d", r.FlowsResident, 1<<20)
		}
		if r.Errs != 0 || r.TableFull != 0 {
			b.Fatalf("errs=%d tableFull=%d, want 0", r.Errs, r.TableFull)
		}
		res = r
	}
	b.ReportMetric(float64(res.FlowsResident), "flows-resident")
	b.ReportMetric(res.EventsPerSec, "events/sec")
	b.ReportMetric(float64(res.P99ProbeRTT)/float64(time.Millisecond), "p99-probe-rtt-ms")
	b.ReportMetric(float64(res.TableFull), "table-full")
}

// BenchmarkFleetSustained runs the continuous-inference controller service
// at fleet scale: 248 simulated members plus 8 real-TCP members served
// through the switchd path, every one probed, size-inferred, and cost-fitted
// over repeated rounds on the sharded worker pool. The fold is bit-identical
// at any worker count (TestFleetShardedDifferential). Headline metrics:
// completed inferences per wall second, flow-mods per wall second, and the
// p99 sentinel-probe RTT.
func BenchmarkFleetSustained(b *testing.B) {
	tcp, err := fleet.SpawnSimTCP(8, 1, 1e-6, ofconn.ControllerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer tcp.Close()
	var res *fleet.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := fleet.Run(fleet.Options{
			Switches: 248,
			Rounds:   2,
			Seed:     1,
			TCP:      tcp.Fleet,
		})
		if err != nil {
			b.Fatal(err)
		}
		if n := r.Switches + r.TCPSwitches; n < 256 {
			b.Fatalf("fleet size = %d members, want >= 256", n)
		}
		if r.InferErrs != 0 {
			b.Fatalf("inference errors: %d", r.InferErrs)
		}
		res = r
	}
	b.ReportMetric(float64(res.Switches+res.TCPSwitches), "switches")
	b.ReportMetric(res.SwitchesPerSec, "switches-inferred/sec")
	b.ReportMetric(res.FlowModsPerSec, "flow-mods/sec")
	b.ReportMetric(float64(res.P99ProbeRTT)/float64(time.Millisecond), "p99-probe-rtt-ms")
}

// BenchmarkTelemetryVecRecord measures the labeled hot path end to end as
// the probe engine drives it: one labeled counter add plus one labeled
// histogram observation per op, with a flight-recorder append alongside.
// The allocs-per-run probe is the PR's hard gate — the labeled record path
// must stay allocation-free, same as the unlabeled handles.
func BenchmarkTelemetryVecRecord(b *testing.B) {
	reg := telemetry.NewRegistry()
	cv := reg.CounterVec("bench.ops", "switch")
	hv := reg.HistogramVec("bench.rtt_ns", "switch")
	fr := telemetry.NewFlightRecorder(1024)
	c, h, tr := cv.With("sw1"), hv.With("sw1"), fr.Track("sw1")
	now := time.Now()

	if n := testing.AllocsPerRun(100, func() {
		cv.With("sw1").Add(1)
		hv.With("sw1").Observe(42)
		tr.Record(now, now, time.Millisecond, 7, false)
	}); n != 0 {
		b.Fatalf("labeled record path allocates %v objects/op, want 0", n)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(float64(i))
		tr.Record(now, now, time.Duration(i), uint32(i), false)
	}
}
